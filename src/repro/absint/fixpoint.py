"""Fixpoint abstract interpretation of a sequential netlist.

Starting from the reset state (every register at its ``init`` value,
memories at their ``init`` contents), :func:`analyze` repeatedly pushes
the abstract register state through one cycle of the combinational
semantics and *accumulates* (joins) the result into the state, so the
final map over-approximates every reachable state:

``state'[r] ⊇ state[r] ∪ next_r(state)``

Writable memories are summarised by a single abstract word (the join of
the initial contents and everything ever written); ROMs — memories with
no write ports, which :class:`repro.formal.bmc.TransitionSystem` also
treats as constant — keep their exact contents and reads through a
sufficiently-narrow abstract address are refined by case-splitting on
the concrete addresses.

Widening (interval bounds jump to the extremes once they keep moving)
plus the finite known-bits lattice force termination; ``max_iterations``
is a pure backstop that blows still-changing entries to ⊤, which is
always sound.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

from ..hdl import expr as E
from ..hdl.bitvec import mask
from ..hdl.netlist import Module
from .domain import AbsValue, abs_transfer


def _concrete_values(value: AbsValue, limit: int) -> list[int] | None:
    """All concrete values in the concretisation, or ``None`` if there
    could be more than ``limit`` of them."""
    span = value.hi - value.lo + 1
    if span <= limit:
        return [
            x
            for x in range(value.lo, value.hi + 1)
            if (x & value.known) == value.value
        ]
    unknown = mask(value.width) & ~value.known
    nbits = bin(unknown).count("1")
    if nbits < 31 and (1 << nbits) <= limit:
        positions = [i for i in range(value.width) if (unknown >> i) & 1]
        out = []
        for combo in range(1 << nbits):
            x = value.value
            for j, pos in enumerate(positions):
                if (combo >> j) & 1:
                    x |= 1 << pos
            if value.lo <= x <= value.hi:
                out.append(x)
        return out
    return None


def _memory_summary(memory, include_unwritten: bool) -> AbsValue:
    """Join of a memory's initial contents (plus 0 for unspecified words)."""
    width = memory.data_width
    summary: AbsValue | None = None
    if include_unwritten and len(memory.init) < memory.size:
        summary = AbsValue.const(width, 0)
    for word in memory.init.values():
        value = AbsValue.const(width, word)
        summary = value if summary is None else summary.join(value)
        if summary.is_top():
            break
    return summary if summary is not None else AbsValue.const(width, 0)


def _environments(
    module: Module,
    state: dict[str, AbsValue],
    mem_summary: dict[str, AbsValue],
    rom: dict[str, bool],
    values: dict[int, AbsValue],
    rom_case_limit: int,
):
    """The register/memory environments of one abstract evaluation,
    closed over a (possibly still-moving) abstract state."""

    def reg_env(node: E.Expr) -> AbsValue:
        current = state.get(node.name)  # type: ignore[attr-defined]
        if current is None or current.width != node.width:
            return AbsValue.top(node.width)
        return current

    def mem_env(node: E.Expr) -> AbsValue:
        memory = module.memories.get(node.mem)  # type: ignore[attr-defined]
        if memory is None or memory.data_width != node.width:
            return AbsValue.top(node.width)
        summary = mem_summary[memory.name]
        if rom[memory.name]:
            # case-split a narrow abstract address over the concrete words
            addrs = _concrete_values(values[id(node.addr)], rom_case_limit)
            if addrs is not None and addrs:
                out: AbsValue | None = None
                for a in addrs:
                    word = AbsValue.const(
                        memory.data_width, memory.init.get(a, 0)
                    )
                    out = word if out is None else out.join(word)
                    if out.is_top():
                        break
                return out if out is not None else summary
        return summary

    return reg_env, mem_env


@dataclass
class FixpointResult:
    """Stable abstract state of a module.

    ``registers`` maps register names to facts true in every reachable
    state; ``memories`` maps memory names to a single-word summary of
    all reachable contents; ``values`` maps ``id(node)`` to the abstract
    value of every combinational node in the final (stable) evaluation.

    :meth:`eval` extends ``values`` on demand to expressions outside the
    module's roots, memoised on interned node ids — the cross-obligation
    CSE that lets candidate properties and sibling obligations reuse each
    other's transfer computations.
    """

    module: Module
    registers: dict[str, AbsValue]
    memories: dict[str, AbsValue]
    values: dict[int, AbsValue]
    iterations: int
    widened: bool
    rom_case_limit: int = 64
    # nodes evaluated through eval(): keeps their ids (the memo keys)
    # from being recycled by the allocator while this result is alive
    _pinned: list = field(default_factory=list, repr=False)

    def eval(self, expression: E.Expr) -> AbsValue:
        """Abstract value of an arbitrary expression in the stable state.

        Transfers are memoised in ``values`` keyed on interned node ids:
        any subterm hash-consed together with a previously evaluated
        expression — another candidate invariant, a sibling obligation's
        property — is a dictionary hit, not a recomputation.  Evaluated
        nodes are pinned so the ids stay valid for this result's
        lifetime.
        """
        rom = {
            name: not memory.write_ports
            for name, memory in self.module.memories.items()
        }
        reg_env, mem_env = _environments(
            self.module,
            self.registers,
            self.memories,
            rom,
            self.values,
            self.rom_case_limit,
        )
        values = self.values
        for node in E.walk([expression]):
            if id(node) in values:
                continue
            values[id(node)] = abs_transfer(
                node,
                lambda n: values[id(n)],
                reg_env=reg_env,
                mem_env=mem_env,
            )
            self._pinned.append(node)
        return values[id(expression)]


# one fixpoint per (module, analysis knobs), shared across every caller
# holding the same module alive — sibling obligations, repeated mining
# runs, the lint semantic pass.  Weak on the module so dropping the
# netlist drops the analysis.
_SHARED_FIXPOINTS: "weakref.WeakKeyDictionary[Module, dict]" = (
    weakref.WeakKeyDictionary()
)


def shared_fixpoint(
    module: Module,
    *,
    widen_after: int = 3,
    max_iterations: int = 50,
    rom_case_limit: int = 64,
) -> FixpointResult:
    """Memoised :func:`analyze`.

    The fixpoint of a module is a pure function of the netlist and the
    analysis knobs, so everyone discharging obligations over the same
    hash-consed module can share one — including its ever-growing
    :meth:`FixpointResult.eval` memo, which is what makes invariant
    mining reuse transfer computations across sibling obligations.
    """
    per_module = _SHARED_FIXPOINTS.get(module)
    if per_module is None:
        per_module = {}
        _SHARED_FIXPOINTS[module] = per_module
    key = (widen_after, max_iterations, rom_case_limit)
    result = per_module.get(key)
    if result is None:
        result = analyze(
            module,
            widen_after=widen_after,
            max_iterations=max_iterations,
            rom_case_limit=rom_case_limit,
        )
        per_module[key] = result
    return result


def analyze(
    module: Module,
    *,
    widen_after: int = 3,
    max_iterations: int = 50,
    rom_case_limit: int = 64,
) -> FixpointResult:
    """Run the fixpoint interpreter; see the module docstring."""
    state: dict[str, AbsValue] = {
        name: AbsValue.const(reg.width, reg.init)
        for name, reg in module.registers.items()
    }
    mem_summary: dict[str, AbsValue] = {}
    rom: dict[str, bool] = {}
    for name, memory in module.memories.items():
        rom[name] = not memory.write_ports
        mem_summary[name] = _memory_summary(memory, include_unwritten=True)

    roots = module.roots()
    order = E.walk(roots)
    values: dict[int, AbsValue] = {}
    reg_env, mem_env = _environments(
        module, state, mem_summary, rom, values, rom_case_limit
    )

    def _evaluate() -> None:
        values.clear()
        for node in order:
            values[id(node)] = abs_transfer(
                node,
                lambda n: values[id(n)],
                reg_env=reg_env,
                mem_env=mem_env,
            )

    iterations = 0
    widened = False
    while True:
        iterations += 1
        _evaluate()
        changed: set[str] = set()
        changed_mems: set[str] = set()
        for name, reg in module.registers.items():
            enable = values[id(reg.enable)]
            if enable.hi == 0:
                continue  # enable provably 0: the register never moves
            old = state[name]
            nxt = values[id(reg.next)]
            if iterations > widen_after:
                new = old.widen(old.join(nxt))
                if new != old:
                    widened = True
            else:
                new = old.join(nxt)
            if new != old:
                state[name] = new
                changed.add(name)
        for name, memory in module.memories.items():
            if rom[name]:
                continue
            old = mem_summary[name]
            new = old
            for port in memory.write_ports:
                enable = values[id(port.enable)]
                if enable.hi == 0:
                    continue
                new = new.join(values[id(port.data)])
            if new != old:
                mem_summary[name] = new
                changed_mems.add(name)
        if not changed and not changed_mems:
            break
        if iterations >= max_iterations:
            # backstop: widen everything still moving straight to top
            for name in changed:
                state[name] = AbsValue.top(module.registers[name].width)
            for name in changed_mems:
                mem_summary[name] = AbsValue.top(
                    module.memories[name].data_width
                )
            widened = True

    return FixpointResult(
        module=module,
        registers=state,
        memories=mem_summary,
        values=values,
        iterations=iterations,
        widened=widened,
        rom_case_limit=rom_case_limit,
    )
