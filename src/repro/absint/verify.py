"""SAT verification of candidate invariants (Houdini-style).

Candidates that survive the concrete trace filter are still only
*conjectures*; before anything is injected as an assumption into a
k-induction obligation it must be proved here.  The algorithm is the
classic simultaneous-induction fixpoint (Houdini):

1. **base**: every candidate must hold in the concrete reset state
   (evaluated with the interpreter — exact, no abstraction);
2. **step**: on a 2-frame free-init unrolling, assume *all* surviving
   candidates in frame 0 and ask the solver whether any candidate can
   fail in frame 1; failures are dropped and the loop repeats until no
   candidate falls.

The surviving set is, as a conjunction, a 1-inductive invariant — which
makes each member individually safe to assume in any induction frame,
*provided the whole set is assumed together*.  :func:`verify_candidates`
therefore returns the set as a unit; callers inject subsets only when
they are closed under the support filter (see
:func:`repro.absint.mine.inject_invariants`).

Candidates that read external inputs are rejected outright (an
invariant over inputs is meaningless), and a solver query that exhausts
its conflict budget drops the candidate — sound in the conservative
direction, since dropping can only lose facts, never invent them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..formal.aig import fresh_vec
from ..formal.bmc import IncrementalUnroller, TransitionSystem
from ..hdl import expr as E
from ..hdl.netlist import Module
from ..hdl.sim import Evaluator, Simulator


@dataclass
class VerifyOutcome:
    """Result of a Houdini run over a candidate set."""

    proven: dict[str, E.Expr] = field(default_factory=dict)
    rejected: dict[str, str] = field(default_factory=dict)  # name -> reason
    rounds: int = 0
    seconds: float = 0.0


def verify_candidates(
    module: Module,
    system: TransitionSystem,
    candidates: dict[str, E.Expr],
    *,
    max_conflicts: int | None = None,
) -> VerifyOutcome:
    """Prove the inductive subset of ``candidates``; see module docstring."""
    t0 = time.perf_counter()
    outcome = VerifyOutcome()
    alive: dict[str, E.Expr] = {}
    for name, expression in candidates.items():
        if expression.width != 1:
            outcome.rejected[name] = "not a 1-bit property"
        elif E.input_reads([expression]):
            outcome.rejected[name] = "reads external inputs"
        else:
            alive[name] = expression

    # base: exact evaluation in the concrete reset state
    if alive:
        sim = Simulator(module)
        evaluator = Evaluator(sim.state, {})
        for name in list(alive):
            if evaluator.eval(alive[name]) != 1:
                outcome.rejected[name] = "fails in the reset state"
                del alive[name]

    # step: simultaneous induction on one incremental 2-frame unrolling
    if alive:
        support = system.cone_of_influence(list(alive.values()))
        unroller = IncrementalUnroller(system, support=support, free_init=True)
        unroller.ensure_frames(2)
        hyp = {name: unroller.literal(0, e) for name, e in alive.items()}
        goal = {name: unroller.literal(1, e) for name, e in alive.items()}

        def lit_true(result, lit: int) -> bool:
            return result.value(abs(lit)) == (lit > 0)

        while alive:
            outcome.rounds += 1
            # one query per round: can ANY surviving candidate fail in
            # frame 1 under the joint hypothesis?  The failure
            # disjunction is guarded by a fresh activation literal so
            # the clause dies with the round; a SAT model names every
            # falling candidate at once, so the fixpoint needs one query
            # per round instead of one per candidate per round (the
            # greatest fixpoint is drop-order independent).
            act = unroller.emitter.encode(fresh_vec(unroller.aig, 1)[0])
            unroller.solver.add_clause(
                [-act] + [-goal[name] for name in alive]
            )
            assumptions = [hyp[other] for other in alive]
            result = unroller.solver.solve(
                assumptions=[*assumptions, act], max_conflicts=max_conflicts
            )
            if result.satisfiable is False:
                break  # the surviving set is simultaneously inductive
            if result.satisfiable is True:
                for name in list(alive):
                    if not lit_true(result, goal[name]):
                        outcome.rejected[name] = (
                            "not inductive relative to the surviving set"
                        )
                        del alive[name]
                continue
            # budget exhausted on the joint query: fall back to one
            # query per candidate so the exhaustion is attributed to the
            # candidate that caused it (classic Houdini round)
            dropped = False
            for name in list(alive):
                assumptions = [hyp[other] for other in alive]
                assumptions.append(-goal[name])
                result = unroller.solver.solve(
                    assumptions=assumptions, max_conflicts=max_conflicts
                )
                if result.satisfiable is not False:
                    reason = (
                        "conflict budget exhausted"
                        if result.satisfiable is None
                        else "not inductive relative to the surviving set"
                    )
                    outcome.rejected[name] = reason
                    del alive[name]
                    dropped = True
            if not dropped:
                break

    outcome.proven = dict(alive)
    outcome.seconds = time.perf_counter() - t0
    return outcome
