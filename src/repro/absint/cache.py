"""Persistent cache of SAT-proven mined invariants.

Mining is pure in the module and the mining parameters, so a proven set
can be reused across runs under the same content-addressed discipline
as the PR 1 discharge cache: the key hashes the *whole module*
fingerprint (an invariant can mention any register), the mining
parameters, and the solver/engine/absint versions, so any change that
could alter the proven set changes the key.

Records live under ``<root>/absint/`` next to the discharge records,
are written atomically, carry a content checksum, and evict themselves
on any load failure (crash-truncated, hand-edited, version-skewed) —
the same self-healing contract as :class:`repro.jobs.cache.ResultCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from ..formal.bmc import ENGINE_VERSION
from ..formal.sat import SOLVER_VERSION
from ..hdl.netlist import Module
from ..proofs.fingerprint import fingerprint_module
from .domain import ABSINT_VERSION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .mine import MiningParams, MiningResult

CACHE_VERSION = 1


def _entry_checksum(payload: Mapping[str, object]) -> str:
    body = {key: value for key, value in payload.items() if key != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class InvariantCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


@dataclass
class InvariantCache:
    """Fingerprint-keyed store of :class:`repro.absint.mine.MiningResult`."""

    root: str | os.PathLike = ".repro-cache"
    stats: InvariantCacheStats = field(default_factory=InvariantCacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def directory(self) -> Path:
        return Path(self.root) / "absint"

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def key_for(self, module: Module, params: "MiningParams") -> str:
        lines = [
            f"versions:solver={SOLVER_VERSION},engine={ENGINE_VERSION}"
            f",absint={ABSINT_VERSION}",
            f"module:{fingerprint_module(module)}",
            "params:"
            + json.dumps(params.invariant_params(), sort_keys=True),
        ]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def get(self, key: str) -> "MiningResult | None":
        from .mine import MiningResult

        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                raise ValueError("cache record is not an object")
            if payload.get("version") != CACHE_VERSION:
                raise ValueError("cache version mismatch")
            if payload.get("checksum") != _entry_checksum(payload):
                raise ValueError("cache checksum mismatch")
            result = MiningResult.from_dict(payload["result"])
            if not result.checked:
                raise ValueError("unchecked mining result in cache")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._evict(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            return
        self.stats.evictions += 1

    def put(self, key: str, result: "MiningResult") -> bool:
        """Persist a mining result; unchecked results are never stored."""
        if not result.checked:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "result": result.to_dict(include_exprs=True),
            "created": time.time(),
        }
        payload["checksum"] = _entry_checksum(payload)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True
