"""Invariant mining from the abstract fixpoint.

The pipeline is *generate → trace-filter → SAT-verify*:

1. **generate** — candidate 1-bit properties from three sources: facts
   the fixpoint already proved abstractly (known-bits masks and interval
   bounds per register — re-proving them inductively lets the SAT
   engine *assume* them, which abstract truth alone would not justify
   for injection bookkeeping), a relational grammar the domains cannot
   express (implication and at-most-one pairs over the 1-bit control
   registers — stall ``fullb`` bits, write enables, forwarding valids),
   and machine-declared invariant templates
   (:class:`repro.machine.prepared.InvariantTemplate`);
2. **trace-filter** — run the concrete interpreter for a few hundred
   cycles and drop any candidate observed false (cheap, kills most
   junk before the solver sees it);
3. **verify** — Houdini simultaneous induction
   (:func:`repro.absint.verify.verify_candidates`); only survivors are
   ever returned as proven.

:func:`inject_invariants` then strengthens proof obligations with the
proven facts: an invariant is attached to an obligation only when its
cone-of-influence is contained in the obligation's (so the obligation's
COI slice, and hence its cache fingerprint, grows by nothing outside
what it already reads).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace

from ..formal.bmc import TransitionSystem
from ..hdl import expr as E
from ..hdl.bitvec import mask
from ..hdl.serialize import exprs_from_json, exprs_to_json
from ..hdl.sim import Evaluator, Simulator
from ..proofs.obligations import Obligation, ObligationKind
from .domain import ABSINT_VERSION
from .fixpoint import FixpointResult, shared_fixpoint
from .verify import verify_candidates


@dataclass(frozen=True)
class MiningParams:
    """Knobs for candidate generation and verification.

    Everything here participates in the invariant-cache key (see
    :meth:`invariant_params`): two runs with different knobs may prove
    different sets.
    """

    trace_cycles: int = 64
    max_conflicts: int | None = 200_000
    max_candidates: int = 512
    max_onebit_registers: int = 16
    widen_after: int = 3
    max_iterations: int = 50
    rom_case_limit: int = 64
    bit_facts: bool = True
    range_facts: bool = True
    implications: bool = True
    templates: bool = True

    def invariant_params(self) -> dict:
        """The fields a cached mining result depends on."""
        return {
            "trace_cycles": self.trace_cycles,
            "max_conflicts": self.max_conflicts,
            "max_candidates": self.max_candidates,
            "max_onebit_registers": self.max_onebit_registers,
            "widen_after": self.widen_after,
            "max_iterations": self.max_iterations,
            "rom_case_limit": self.rom_case_limit,
            "bit_facts": self.bit_facts,
            "range_facts": self.range_facts,
            "implications": self.implications,
            "templates": self.templates,
        }


@dataclass(frozen=True)
class MinedInvariant:
    """One SAT-proven (or, with ``check=False``, merely conjectured)
    invariant property."""

    name: str
    kind: str  # "bits" | "range" | "implication" | "mutex" | "template"
    prop: E.Expr


@dataclass
class MiningResult:
    """Outcome of one mining run over a module."""

    module_name: str
    candidates: int
    survivors: int  # candidates alive after the concrete trace filter
    proven: list[MinedInvariant]
    rejected: dict[str, str] = field(default_factory=dict)
    rounds: int = 0
    fixpoint_iterations: int = 0
    seconds: float = 0.0
    checked: bool = True
    from_cache: bool = False

    def to_dict(self, include_exprs: bool = True) -> dict:
        payload = {
            "module": self.module_name,
            "candidates": self.candidates,
            "survivors": self.survivors,
            "proven": [
                {"name": inv.name, "kind": inv.kind} for inv in self.proven
            ],
            "rejected": dict(self.rejected),
            "rounds": self.rounds,
            "fixpoint_iterations": self.fixpoint_iterations,
            "seconds": round(self.seconds, 4),
            "checked": self.checked,
            "from_cache": self.from_cache,
            "absint_version": ABSINT_VERSION,
        }
        if include_exprs:
            payload["exprs"] = exprs_to_json([inv.prop for inv in self.proven])
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MiningResult":
        props = exprs_from_json(payload["exprs"])
        proven = [
            MinedInvariant(meta["name"], meta["kind"], prop)
            for meta, prop in zip(payload["proven"], props)
        ]
        return cls(
            module_name=payload["module"],
            candidates=payload["candidates"],
            survivors=payload["survivors"],
            proven=proven,
            rejected=dict(payload.get("rejected", {})),
            rounds=payload.get("rounds", 0),
            fixpoint_iterations=payload.get("fixpoint_iterations", 0),
            seconds=payload.get("seconds", 0.0),
            checked=payload.get("checked", True),
            from_cache=True,
        )


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def rom_template_violations(machine, module) -> list[str]:
    """Concretely check every declared invariant template against every
    word of every ROM matching its register's width.

    The mined ``tmpl.*`` facts say a pipeline register only ever holds
    template-satisfying words, and those words come out of a read-only
    memory — so an image word violating the template is a defect the
    abstract interpretation of the *program image* flags directly, with
    no reachability argument (trace depth, BMC bound) needed.  The fault
    campaign's absint rung uses this against ``unalign-rom``-style image
    corruption.  Returns one message per violating (template, word).
    """
    violations: list[str] = []
    for template in getattr(machine, "invariant_templates", ()):
        reg = machine.registers.get(template.register)
        if reg is None:
            continue
        for mem_name, memory in module.memories.items():
            if memory.write_ports or memory.data_width != reg.width:
                continue
            for addr in sorted(memory.init):
                word = memory.init[addr] & mask(memory.data_width)
                prop = template.prop(E.const(memory.data_width, word))
                if isinstance(prop, E.Const) and prop.value == 0:
                    violations.append(
                        f"tmpl.{template.name}: {mem_name}[{addr:#x}] ="
                        f" {word:#x} violates the declared template"
                    )
    return violations


def generate_candidates(
    pipelined,
    fixpoint: FixpointResult,
    params: MiningParams,
) -> dict[str, tuple[str, E.Expr]]:
    """Candidate name -> (kind, property); insertion order is the
    deterministic priority order used when trimming to
    ``max_candidates``."""
    module = fixpoint.module
    out: dict[str, tuple[str, E.Expr]] = {}

    # machine-declared templates first: they encode designer knowledge
    # and are the candidates obligations are generated from
    machine = getattr(pipelined, "machine", None)
    if params.templates and machine is not None:
        for template in getattr(machine, "invariant_templates", ()):
            reg = machine.registers[template.register]
            for k in reg.instances():
                name = reg.instance_name(k)
                if name not in module.registers:
                    continue
                read = E.reg_read(name, reg.width)
                out[f"tmpl.{template.name}.{name}"] = (
                    "template",
                    template.prop(read),
                )

    # facts the fixpoint proved abstractly, re-stated as properties
    for name, reg in module.registers.items():
        value = fixpoint.registers.get(name)
        if value is None:
            continue
        w = reg.width
        full = mask(w)
        read = E.reg_read(name, w)
        if params.bit_facts and value.known:
            prop = E.eq(
                E.band(read, E.const(w, value.known)),
                E.const(w, value.value),
            )
            if not isinstance(prop, E.Const):
                out[f"bits.{name}"] = ("bits", prop)
        if params.range_facts:
            # only bounds strictly tighter than what the bit fact implies
            bit_hi = value.value | (full & ~value.known)
            if value.hi < bit_hi:
                out[f"range.hi.{name}"] = (
                    "range",
                    E.ule(read, E.const(w, value.hi)),
                )
            if value.lo > value.value:
                out[f"range.lo.{name}"] = (
                    "range",
                    E.ule(E.const(w, value.lo), read),
                )

    # relational grammar over the 1-bit control registers
    if params.implications:
        onebit = sorted(
            name
            for name, reg in module.registers.items()
            if reg.width == 1
            and not (
                fixpoint.registers[name].is_const()
                if name in fixpoint.registers
                else False
            )
        )[: params.max_onebit_registers]
        for a, b in itertools.permutations(onebit, 2):
            out[f"imp.{a}->{b}"] = (
                "implication",
                E.implies(E.reg_read(a, 1), E.reg_read(b, 1)),
            )
        for a, b in itertools.combinations(onebit, 2):
            out[f"mutex.{a}.{b}"] = (
                "mutex",
                E.bnot(E.band(E.reg_read(a, 1), E.reg_read(b, 1))),
            )

    if len(out) > params.max_candidates:
        out = dict(itertools.islice(out.items(), params.max_candidates))
    return out


def _trace_filter(
    module,
    candidates: dict[str, E.Expr],
    cycles: int,
    fixpoint: FixpointResult | None = None,
) -> tuple[dict[str, E.Expr], dict[str, str]]:
    """Drop candidates observed false on a concrete zero-input run.

    Candidates the fixpoint already proves abstractly (their property
    evaluates to constant 1 in the stable abstract state, via the
    memoised cross-obligation :meth:`FixpointResult.eval`) hold in every
    reachable state, a fortiori on the trace — they are survivors by
    construction and skip the per-cycle simulation entirely.
    """
    alive = dict(candidates)
    rejected: dict[str, str] = {}
    simulated = alive
    if fixpoint is not None:
        simulated = {}
        for name, prop in alive.items():
            value = fixpoint.eval(prop)
            if not (value.width == 1 and value.is_const() and value.lo == 1):
                simulated[name] = prop
    if simulated:
        sim = Simulator(module)
        zero = {name: 0 for name in module.inputs}
        for cycle in range(cycles):
            if not simulated:
                break
            evaluator = Evaluator(sim.state, zero)
            for name in list(simulated):
                if evaluator.eval(simulated[name]) != 1:
                    rejected[name] = f"falsified at trace cycle {cycle}"
                    del simulated[name]
                    del alive[name]
            sim.step(zero)
    return alive, rejected


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def mine_invariants(
    pipelined,
    *,
    system: TransitionSystem | None = None,
    params: MiningParams | None = None,
    check: bool = True,
    cache=None,
    fixpoint: FixpointResult | None = None,
) -> MiningResult:
    """Mine (and, with ``check=True``, SAT-prove) invariants for a module.

    ``pipelined`` is a :class:`repro.machine.PipelinedMachine` or a bare
    :class:`repro.hdl.netlist.Module`.  With ``check=False`` the result
    carries the trace-surviving *conjectures* and ``checked=False`` —
    such a result must never be injected.  ``cache`` is an optional
    :class:`repro.absint.cache.InvariantCache`; only checked results are
    cached.
    """
    t0 = time.perf_counter()
    params = params or MiningParams()
    module = getattr(pipelined, "module", pipelined)

    key = None
    if cache is not None and check:
        key = cache.key_for(module, params)
        hit = cache.get(key)
        if hit is not None:
            return hit

    if fixpoint is None:
        # memoised per (module, knobs): sibling obligations, repeated
        # mining runs and the lint pass share one analysis and one
        # cross-obligation eval() memo
        fixpoint = shared_fixpoint(
            module,
            widen_after=params.widen_after,
            max_iterations=params.max_iterations,
            rom_case_limit=params.rom_case_limit,
        )
    generated = generate_candidates(pipelined, fixpoint, params)
    kinds = {name: kind for name, (kind, _prop) in generated.items()}
    candidates = {name: prop for name, (_kind, prop) in generated.items()}

    survivors, rejected = _trace_filter(
        module, candidates, params.trace_cycles, fixpoint=fixpoint
    )

    if check:
        if system is None:
            system = TransitionSystem.from_module(module)
        outcome = verify_candidates(
            module, system, survivors, max_conflicts=params.max_conflicts
        )
        rejected.update(outcome.rejected)
        proven = [
            MinedInvariant(name, kinds[name], prop)
            for name, prop in outcome.proven.items()
        ]
        rounds = outcome.rounds
    else:
        proven = [
            MinedInvariant(name, kinds[name], prop)
            for name, prop in survivors.items()
        ]
        rounds = 0

    result = MiningResult(
        module_name=module.name,
        candidates=len(candidates),
        survivors=len(survivors),
        proven=proven,
        rejected=rejected,
        rounds=rounds,
        fixpoint_iterations=fixpoint.iterations,
        seconds=time.perf_counter() - t0,
        checked=check,
    )
    if key is not None:
        cache.put(key, result)
    return result


# ---------------------------------------------------------------------------
# Injection into proof obligations
# ---------------------------------------------------------------------------


def inject_invariants(
    obligations: list[Obligation],
    proven: list[MinedInvariant],
    system: TransitionSystem,
) -> list[Obligation]:
    """Strengthen invariant obligations with proven facts.

    Each proven invariant is attached (as an ``assume`` conjunct) to
    every :data:`~repro.proofs.obligations.ObligationKind.INVARIANT`
    obligation whose cone-of-influence already contains the invariant's
    — never to trace or liveness obligations, never an obligation's own
    property to itself.  The assumption set is part of the obligation
    fingerprint, so cached verdicts are keyed by exactly the facts that
    were assumed.
    """
    if not proven:
        return list(obligations)
    inv_cones = [
        (inv, frozenset(system.cone_of_influence([inv.prop])))
        for inv in proven
    ]
    out: list[Obligation] = []
    for obligation in obligations:
        if (
            obligation.kind is not ObligationKind.INVARIANT
            or obligation.prop is None
        ):
            out.append(obligation)
            continue
        cone = system.cone_of_influence(
            [obligation.prop, *obligation.assume]
        )
        extra = tuple(
            inv.prop
            for inv, inv_cone in inv_cones
            if inv.prop is not obligation.prop
            and inv.prop not in obligation.assume
            and inv_cone <= cone
        )
        if extra:
            out.append(
                replace(obligation, assume=tuple(obligation.assume) + extra)
            )
        else:
            out.append(obligation)
    return out
