"""Static hazard audit over a transformed pipeline (HADES-style, no SAT).

The audit re-derives, purely syntactically, every read-after-write pair of
the prepared machine — a stage ``k`` reading a register file or plain
register whose architectural write happens in a distant stage ``w`` — by
walking exactly the same stage roots and applying exactly the same
dedup rules as the forwarding synthesis
(:func:`repro.core.transform._forwarded_read_sites`).  It then checks the
generated :class:`repro.core.forwarding.ForwardingNetwork` list covers
each pair, and that every intermediate hit stage of each network is
either *forwarded* (a real value is selected) or *interlocked* (the hit
raises a data hazard), using the per-stage ``hazards`` bookkeeping the
builder records.

Unlike the SAT-backed proof obligations of :mod:`repro.proofs`, this is a
coverage argument, not a correctness proof — but it runs in milliseconds
and catches dropped forwarding paths, unprotected stages and dead
designer annotations before any solver is invoked.
"""

from __future__ import annotations

from ..core.transform import _forwarded_read_sites, _stage_roots
from ..hdl import expr as E
from .diagnostics import Severity
from .registry import MachineContext, machine_pass, register_rule

register_rule(
    "hazard-raw-pair",
    "read-after-write pair requiring forwarding or interlock",
    Severity.INFO,
    target="machine",
    description="informational enumeration of every (writer stage, reader"
    " stage, register file) pair the transformation must cover",
)
register_rule(
    "hazard-uncovered-raw",
    "RAW pair has no forwarding network",
    Severity.ERROR,
    target="machine",
    description="a stage reads state written by a distant stage but the"
    " pipeline synthesized no forwarding/interlock network for the site;"
    " the read can observe a stale value",
)
register_rule(
    "hazard-unprotected-stage",
    "hit stage neither forwarded nor interlocked",
    Severity.ERROR,
    target="machine",
    description="a forwarding network has a hit stage whose selected value"
    " is the stale architectural read and whose hazard bit cannot raise an"
    " interlock",
)
register_rule(
    "hazard-useless-forwarding",
    "designer forwarding annotation is never used",
    Severity.WARNING,
    target="machine",
    description="a forwarding register was annotated for a (register file,"
    " stage) pair that no synthesized network selects from",
)


def _hazard_path(regfile: str, stage: int) -> str:
    return f"machine:{regfile}@stage{stage}"


class _SitePredicates:
    """Adapter giving :func:`_forwarded_read_sites` the two forwardability
    predicates without constructing a full ForwardingBuilder."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def is_forwarded(self, regfile_name: str, stage: int) -> bool:
        from ..core.forwarding import regfile_needs_forwarding

        return regfile_needs_forwarding(self.machine, regfile_name, stage)

    def is_forwarded_register(self, reg_name: str, stage: int) -> bool:
        from ..core.forwarding import register_needs_forwarding

        return register_needs_forwarding(self.machine, reg_name, stage)


def expected_read_sites(machine) -> list[tuple[int, str, int, int]]:
    """Every RAW site the transformation must cover, as
    ``(reader stage, state name, writer stage, site count)`` tuples
    (site count > 1 when one stage reads a register file at several
    distinct addresses)."""
    shim = _SitePredicates(machine)
    arch_instances = {
        reg.instance_name(reg.last): reg.name
        for reg in machine.registers.values()
    }
    sites: list[tuple[int, str, int, int]] = []
    for stage in range(machine.n_stages):
        roots = _stage_roots(machine, stage)
        reg_sites, file_sites = _forwarded_read_sites(
            shim, roots, stage, arch_instances
        )
        for base in reg_sites:
            writer = machine.registers[base].write_stage
            sites.append((stage, base, writer, 1))
        per_file: dict[str, int] = {}
        for name, _addr in file_sites:
            per_file[name] = per_file.get(name, 0) + 1
        for name, count in per_file.items():
            writer = machine.regfiles[name].write_stage
            sites.append((stage, name, writer, count))
    return sites


@machine_pass
def pass_raw_coverage(ctx: MachineContext) -> None:
    """Enumerate every RAW pair and check each is covered by a network."""
    for stage, name, writer, count in expected_read_sites(ctx.machine):
        path = _hazard_path(name, stage)
        if ctx.config.enumerate_hazards:
            ctx.emit(
                "hazard-raw-pair",
                path,
                f"stage {stage} reads {name!r} written by stage {writer}"
                f" at {count} site(s); hits pipe through stages"
                f" {stage + 1}..{writer}",
                reader=stage,
                writer=writer,
                sites=count,
            )
        covered = len(ctx.pipelined.networks_for(name, stage))
        if covered < count:
            ctx.emit(
                "hazard-uncovered-raw",
                path,
                f"stage {stage} reads {name!r} (written by stage {writer})"
                f" at {count} site(s) but only {covered} forwarding"
                " network(s) were synthesized; the remaining read(s) can"
                " observe a stale value",
                reader=stage,
                writer=writer,
                expected=count,
                covered=covered,
            )


@machine_pass
def pass_stage_protection(ctx: MachineContext) -> None:
    """Every intermediate hit stage of every network must be forwarded
    (a non-stale value is selected) or interlocked (hazard raised)."""
    for network in ctx.pipelined.networks:
        if not network.hit_stages:
            continue
        write_stage = network.write_stage
        for j in network.hit_stages:
            if j == write_stage:
                # a hit in the write stage takes the value present at the
                # register-file input: always final, never hazardous
                continue
            hazard = network.hazards.get(j)
            value = network.values.get(j)
            interlocked = isinstance(hazard, E.Const) and hazard.value == 1
            forwarded = value is not None and value is not network.fallback
            if interlocked or forwarded:
                continue
            path = _hazard_path(network.regfile, network.stage)
            ctx.emit(
                "hazard-unprotected-stage",
                path,
                f"network for {network.regfile!r} read in stage"
                f" {network.stage}: a hit in stage {j} selects the stale"
                " architectural value and its hazard bit"
                f" {'is missing' if hazard is None else 'cannot interlock'}",
                hit_stage=j,
            )


@machine_pass
def pass_useless_forwarding(ctx: MachineContext) -> None:
    """Designer forwarding annotations that no network selects from."""
    used: set[tuple[str, int]] = set()
    for network in ctx.pipelined.networks:
        if not network.hit_stages:
            continue
        write_stage = network.write_stage
        for j in network.hit_stages:
            if j == write_stage:
                continue
            value = network.values.get(j)
            if value is not None and value is not network.fallback:
                used.add((network.regfile, j))
    for annotation in ctx.machine.forwarding:
        if (annotation.regfile, annotation.stage) in used:
            continue
        ctx.emit(
            "hazard-useless-forwarding",
            _hazard_path(annotation.regfile, annotation.stage),
            f"forwarding register {annotation.reg!r} annotated for"
            f" {annotation.regfile!r} at stage {annotation.stage} is never"
            " selected by any synthesized network"
            + (
                " (interlock-only pipeline)"
                if ctx.pipelined.options.interlock_only
                else ""
            ),
            reg=annotation.reg,
        )
