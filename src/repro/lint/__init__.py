"""``repro.lint`` — static analysis for netlists and generated pipelines.

Two pass families over the same diagnostic machinery:

* **structural** (:mod:`.structural`) — runs on any
  :class:`repro.hdl.netlist.Module`: combinational-cycle detection,
  ternary (0/1/X) constant propagation (dead logic, frozen registers,
  unreachable mux arms, write-port overlap), width-narrowing smells and
  unit-gate cost/delay budgets;
* **hazard audit** (:mod:`.hazards`) — runs on a
  :class:`repro.machine.PreparedMachine` plus its transformed
  :class:`repro.core.transform.PipelinedMachine`: syntactic RAW-pair
  enumeration and coverage checking against the synthesized forwarding
  networks.

Entry points: :func:`lint_module`, :func:`lint_machine`,
:func:`lint_pipeline`; renderers in :mod:`.render`; the CLI surface is
``repro lint``.
"""

from .diagnostics import Diagnostic, LintConfig, LintResult, Severity
from .registry import (
    LintRule,
    lint_machine,
    lint_module,
    lint_pipeline,
    rule_table,
)
from .family import lint_family
from .render import render, render_json, render_sarif, render_text
from .semantic import lint_semantic
from .taint import PolicyVerdict, TaintAnalysis, lint_taint, taint_verdicts

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintResult",
    "LintRule",
    "PolicyVerdict",
    "Severity",
    "TaintAnalysis",
    "lint_family",
    "lint_machine",
    "lint_module",
    "lint_pipeline",
    "lint_semantic",
    "lint_taint",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_table",
    "taint_verdicts",
]
