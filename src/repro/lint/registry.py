"""Rule registry and pass driver.

Lint is organised as *passes* over two target kinds:

* **module passes** — run on any :class:`repro.hdl.netlist.Module`
  (structural lint: cycles, dead logic, budgets, ...);
* **machine passes** — run on a :class:`repro.machine.PreparedMachine`
  together with its transformed
  :class:`repro.core.transform.PipelinedMachine` (the static hazard
  audit).

A pass declares the rules it may emit; the registry is the single source
of rule metadata for the renderers (SARIF rule table, ``--list-rules``).
Passes emit through a context object which applies severity overrides,
disabled rules, config waivers and the module's per-element
``lint: ignore`` tags before a diagnostic is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .diagnostics import Diagnostic, LintConfig, LintResult, Severity

if TYPE_CHECKING:  # pragma: no cover
    from ..core.transform import PipelinedMachine
    from ..hdl.netlist import Module
    from ..machine.prepared import PreparedMachine


@dataclass(frozen=True)
class LintRule:
    """Metadata of one lint rule."""

    rule_id: str
    title: str
    severity: Severity
    target: str  # "module" | "machine"
    description: str = ""


_RULES: dict[str, LintRule] = {}
_MODULE_PASSES: list[Callable[["ModuleContext"], None]] = []
_MACHINE_PASSES: list[Callable[["MachineContext"], None]] = []


def register_rule(
    rule_id: str,
    title: str,
    severity: Severity,
    target: str = "module",
    description: str = "",
) -> LintRule:
    if rule_id in _RULES:
        raise ValueError(f"lint rule {rule_id!r} already registered")
    rule = LintRule(rule_id, title, severity, target, description)
    _RULES[rule_id] = rule
    return rule


def rule_table() -> dict[str, LintRule]:
    """All registered rules, keyed by id (imports the pass families so
    the table is complete no matter what was imported first)."""
    from . import family, hazards, semantic, structural, taint  # noqa: F401  (registration)

    return dict(_RULES)


def module_pass(fn: Callable[["ModuleContext"], None]):
    _MODULE_PASSES.append(fn)
    return fn


def machine_pass(fn: Callable[["MachineContext"], None]):
    _MACHINE_PASSES.append(fn)
    return fn


@dataclass
class _Context:
    """Shared emit machinery of module and machine contexts."""

    config: LintConfig
    result: LintResult
    module_name: str
    ignores: dict[str, set[str]] = field(default_factory=dict)

    def emit(
        self,
        rule_id: str,
        path: str,
        message: str,
        severity: Severity | None = None,
        **data: object,
    ) -> Diagnostic | None:
        """Emit a diagnostic unless it is disabled, waived or tagged away."""
        rule = _RULES.get(rule_id)
        if rule is None:
            raise KeyError(f"emit from unregistered lint rule {rule_id!r}")
        if rule_id in self.config.disabled:
            return None
        if self.config.waived(path, rule_id):
            return None
        element = path.partition(":")[2] or path
        tagged = self.ignores.get(element)
        if tagged is not None and ("*" in tagged or rule_id in tagged):
            return None
        severity = (
            self.config.severity_overrides.get(rule_id)
            or severity
            or rule.severity
        )
        diagnostic = Diagnostic(
            rule=rule_id,
            severity=severity,
            module=self.module_name,
            path=path,
            message=message,
            data=tuple(sorted(data.items())),
        )
        self.result.add(diagnostic)
        return diagnostic


@dataclass
class ModuleContext(_Context):
    """Pass context for structural (netlist-level) lint."""

    module: "Module" = None  # type: ignore[assignment]


@dataclass
class MachineContext(_Context):
    """Pass context for the static hazard audit."""

    machine: "PreparedMachine" = None  # type: ignore[assignment]
    pipelined: "PipelinedMachine" = None  # type: ignore[assignment]


def lint_module(
    module: "Module", config: LintConfig | None = None
) -> LintResult:
    """Run every structural pass over one netlist."""
    from . import structural  # noqa: F401  (registration side effect)

    config = config or LintConfig()
    result = LintResult()
    context = ModuleContext(
        config=config,
        result=result,
        module_name=module.name,
        ignores=getattr(module, "lint_ignores", {}),
        module=module,
    )
    for pass_fn in _MODULE_PASSES:
        pass_fn(context)
    return result


def lint_machine(
    machine: "PreparedMachine",
    pipelined: "PipelinedMachine",
    config: LintConfig | None = None,
) -> LintResult:
    """Run the hazard-audit passes over a prepared machine and its
    transformed pipeline."""
    from . import hazards  # noqa: F401  (registration side effect)

    config = config or LintConfig()
    result = LintResult()
    context = MachineContext(
        config=config,
        result=result,
        module_name=pipelined.module.name,
        ignores=getattr(pipelined.module, "lint_ignores", {}),
        machine=machine,
        pipelined=pipelined,
    )
    for pass_fn in _MACHINE_PASSES:
        pass_fn(context)
    return result


def lint_pipeline(
    pipelined: "PipelinedMachine", config: LintConfig | None = None
) -> LintResult:
    """Structural lint of the generated netlist plus the hazard audit —
    the full check of one transformation result."""
    result = lint_module(pipelined.module, config)
    result.extend(lint_machine(pipelined.machine, pipelined, config))
    return result
