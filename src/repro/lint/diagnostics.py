"""Diagnostic records and lint configuration.

A :class:`Diagnostic` is one structured finding of a lint pass: a stable
rule identifier, a severity, the module and element path it refers to
(``register:C.3``, ``probe:stall.2``, ``machine:dlx/GPR@stage1``), a
human-readable message and free-form structured data for renderers and
tests.

Suppression happens at emission time, from two sources:

* the :class:`LintConfig` — disabled rules, severity overrides and
  ``(path glob, rule)`` waivers, the per-run configuration;
* per-element ``lint: ignore`` tags on the module itself
  (:meth:`repro.hdl.netlist.Module.tag_lint_ignore`), the designer-side
  annotation travelling with the netlist.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from enum import IntEnum


class Severity(IntEnum):
    """Finding severity; comparisons follow escalation order."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; use info, warning or error"
            ) from None


#: SARIF 2.1.0 result levels per severity.
SARIF_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


@dataclass(frozen=True)
class Diagnostic:
    """One structured lint finding."""

    rule: str
    severity: Severity
    module: str
    path: str  # element path, e.g. "register:C.3" or "machine:toy/RF@stage1"
    message: str
    data: tuple[tuple[str, object], ...] = ()

    @property
    def element(self) -> str:
        """The element name without its kind prefix."""
        _kind, _sep, name = self.path.partition(":")
        return name if _sep else self.path

    def datum(self, key: str, default: object = None) -> object:
        for k, v in self.data:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "module": self.module,
            "path": self.path,
            "message": self.message,
            "data": dict(self.data),
        }

    def format(self) -> str:
        return (
            f"{self.severity.label:<7} {self.rule:<28}"
            f" {self.module}::{self.path}: {self.message}"
        )


@dataclass
class LintConfig:
    """Per-run lint configuration.

    * ``disabled`` — rule ids that never fire;
    * ``severity_overrides`` — rule id -> severity, replacing the rule's
      default;
    * ``waivers`` — ``(path glob, rule id)`` pairs; a diagnostic whose
      path matches the glob and whose rule matches (or the rule is
      ``"*"``) is dropped;
    * ``max_delay`` / ``max_cost`` — unit-gate budgets for the
      ``delay-budget`` / ``cost-budget`` rules (``None`` disables them);
    * ``enumerate_hazards`` — also emit the INFO-level RAW-pair
      enumeration of the hazard audit.
    """

    disabled: set[str] = field(default_factory=set)
    severity_overrides: dict[str, Severity] = field(default_factory=dict)
    waivers: list[tuple[str, str]] = field(default_factory=list)
    max_delay: float | None = None
    max_cost: float | None = None
    enumerate_hazards: bool = True

    def waived(self, path: str, rule: str) -> bool:
        return any(
            (waived_rule in ("*", rule)) and fnmatch.fnmatch(path, pattern)
            for pattern, waived_rule in self.waivers
        )


@dataclass
class LintResult:
    """The diagnostics of one lint run (possibly over several targets)."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintResult") -> None:
        self.diagnostics.extend(other.diagnostics)

    def at_least(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def deduplicated(self) -> "LintResult":
        """A copy with exact-duplicate diagnostics dropped and the rest
        sorted by (rule, location) — multi-target runs over cores sharing
        submodules repeat findings, and stable order keeps diffs clean."""
        seen: set[Diagnostic] = set()
        unique: list[Diagnostic] = []
        for diagnostic in self.diagnostics:
            if diagnostic in seen:
                continue
            seen.add(diagnostic)
            unique.append(diagnostic)
        unique.sort(
            key=lambda d: (d.rule, d.module, d.path, d.message, d.severity)
        )
        return LintResult(diagnostics=unique)

    def counts(self) -> dict[str, int]:
        result: dict[str, int] = {}
        for diagnostic in self.diagnostics:
            label = diagnostic.severity.label
            result[label] = result.get(label, 0) + 1
        return result

    def summary(self) -> str:
        counts = self.counts()
        parts = [
            f"{counts[label]} {label}"
            for label in ("error", "warning", "info")
            if counts.get(label)
        ]
        return ", ".join(parts) if parts else "clean"
