"""Semantic lint: rules over the abstract-interpretation fixpoint.

Where :mod:`.structural`'s dataflow pass is a *one-shot* ternary
propagation (registers unknown unless structurally frozen), these rules
consume the sequential fixpoint of :func:`repro.absint.analyze`, which
knows what register values are actually *reachable* from reset.  That
strictly stronger information funds rules the structural pass cannot
express:

* ``absint-frozen-register`` — a register provably never leaves its
  initial value even though its enable can fire and its next-value logic
  is not a constant (e.g. the next value degenerates to the register's
  own content: the update logic is reachably dead);
* ``absint-dead-logic`` — a driving expression computes a constant over
  every reachable state, but not under one-shot propagation;
* ``absint-redundant-mux`` — a mux whose select is constant over every
  reachable state (a provably-redundant forwarding or bypass mux);
* ``absint-unreachable-values`` — a register whose reachable values are
  a strict subset of its type (documentation-grade INFO).

The fixpoint costs more than a single walk, so this family is *not* part
of the default :func:`..registry.lint_module` pass list; call
:func:`lint_semantic` explicitly (the fault-injection campaign's absint
rung does, as does ``repro absint``'s consumers' tooling).
"""

from __future__ import annotations

from ..absint.domain import AbsValue
from ..absint.fixpoint import FixpointResult, shared_fixpoint
from ..hdl import expr as E
from ..hdl.bitvec import mask
from ..hdl.netlist import Module
from .diagnostics import LintConfig, LintResult, Severity
from .registry import ModuleContext, register_rule
from .structural import (
    UNKNOWN,
    _frozen_registers,
    _owner_map,
    named_roots,
    ternary_eval,
)

register_rule(
    "absint-frozen-register",
    "register provably never leaves its initial value",
    Severity.ERROR,
    description="the abstract fixpoint proves every reachable value of"
    " this register equals its reset value although update logic exists;"
    " the driving logic is reachably dead (e.g. the register reloads"
    " itself)",
)
register_rule(
    "absint-dead-logic",
    "net is constant over every reachable state",
    Severity.WARNING,
    description="the sequential fixpoint proves this non-constant"
    " expression always evaluates to one value from reset; one-shot"
    " constant propagation cannot see this",
)
register_rule(
    "absint-redundant-mux",
    "mux select is constant over every reachable state",
    Severity.WARNING,
    description="the sequential fixpoint proves the select never varies"
    " from reset; the mux (often a forwarding bypass) is provably"
    " redundant hardware",
)
register_rule(
    "absint-unreachable-values",
    "register values are a strict subset of the type",
    Severity.INFO,
    description="documentation-grade: the fixpoint's known-bits/interval"
    " facts bound the register strictly below its declared type",
)


def _describe(value: AbsValue) -> str:
    parts = []
    if value.known:
        parts.append(f"bits &{value.known:#x} == {value.value:#x}")
    if (value.lo, value.hi) != (0, mask(value.width)):
        parts.append(f"range [{value.lo:#x}, {value.hi:#x}]")
    return "; ".join(parts) or "top"


def lint_semantic(
    module: Module,
    config: LintConfig | None = None,
    fixpoint: FixpointResult | None = None,
) -> LintResult:
    """Run the fixpoint-based rules over one netlist.

    ``fixpoint`` may be supplied to reuse an existing analysis (the
    campaign and ``repro absint`` both already have one); otherwise it is
    computed here.
    """
    config = config or LintConfig()
    result = LintResult()
    context = ModuleContext(
        config=config,
        result=result,
        module_name=module.name,
        ignores=getattr(module, "lint_ignores", {}),
        module=module,
    )
    if fixpoint is None:
        # memoised: the lint gate and invariant mining run over the
        # same module in one discharge drive — share the analysis
        fixpoint = shared_fixpoint(module)

    roots = named_roots(module)
    owner = _owner_map(roots)
    # what the one-shot pass already knows; only report beyond it
    oneshot = ternary_eval(
        [root for _path, root in roots], _frozen_registers(module)
    )

    def already_constant(node: E.Expr) -> bool:
        known, _value = oneshot.get(id(node), UNKNOWN)
        return known == mask(node.width)

    # frozen registers --------------------------------------------------
    for name, reg in module.registers.items():
        value = fixpoint.registers.get(name)
        if value is None or not value.is_const():
            continue
        if value.value != (reg.init & mask(reg.width)):
            continue  # constant but init-unreachable: left to dead-logic
        if isinstance(reg.next, E.Const):
            continue  # a declared constant, not dead update logic
        if isinstance(reg.enable, E.Const) and reg.enable.value == 0:
            continue  # structural never-enabled-register already fires
        context.emit(
            "absint-frozen-register",
            f"register:{name}",
            f"register {name!r} provably holds {value.value:#x} (its reset"
            " value) in every reachable state; its update logic can never"
            " change it",
            value=value.value,
        )

    # reachably-dead logic ----------------------------------------------
    for path, root in roots:
        if isinstance(root, E.Const) or already_constant(root):
            continue
        value = fixpoint.values.get(id(root))
        if value is None or not value.is_const():
            continue
        context.emit(
            "absint-dead-logic",
            path,
            f"expression always evaluates to {value.value:#x} over every"
            " reachable state; the logic computing it is dead",
            value=value.value,
        )

    # redundant muxes ----------------------------------------------------
    for node in E.walk([root for _path, root in roots]):
        if not isinstance(node, E.Mux):
            continue
        if already_constant(node.sel):
            continue  # structural unreachable-mux-arm already fires
        value = fixpoint.values.get(id(node.sel))
        if value is None or not value.is_const():
            continue
        arm = "else" if value.value & 1 else "then"
        context.emit(
            "absint-redundant-mux",
            owner.get(id(node), f"module:{module.name}"),
            f"mux select is constant {value.value & 1} over every reachable"
            f" state; the {arm!r} arm is dead and the mux is redundant",
            select=value.value & 1,
        )

    # unreachable values (documentation-grade) ---------------------------
    for name, reg in module.registers.items():
        value = fixpoint.registers.get(name)
        if value is None or value.is_top() or value.is_const():
            continue
        context.emit(
            "absint-unreachable-values",
            f"register:{name}",
            f"register {name!r} only reaches {_describe(value)};"
            " the remaining values of its type are unreachable",
            known=value.known,
            lo=value.lo,
            hi=value.hi,
        )
    return result
