"""Width-parametricity lint: surface family-certificate verdicts.

The analysis in :mod:`repro.analysis.family` decides, per proof
obligation, whether one discharged verdict covers the whole datapath
width family.  Two of its outcomes deserve the lint machinery (severity
overrides, waivers, SARIF rendering) rather than a bare report:

* ``family.entangled-control`` — an invariant whose *entire* cone of
  influence is width-invariant control state (no register in its support
  scales with the datapath) still typed entangled.  With nothing scaled
  in sight there is no honest way for the width to matter: the pairing
  broke, a declared scheduling oracle stopped aliasing its netlist node,
  or control genuinely reads data through an unsanctioned channel.  This
  is an error — certified coverage silently collapses.
* ``family.width-cutoff`` — informational: the family's certified
  obligations were discharged once at the cutoff width ``w0`` and their
  verdicts cover every member width ``>= w0`` (the HADES small-model
  argument).  Widths *below* the cutoff fall back to direct discharge.

Like :mod:`.taint` and :mod:`.semantic`, this pass is not part of the
default module/machine pass lists — call :func:`lint_family` explicitly
(``repro family --check`` and the CI family job do).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import LintConfig, LintResult, Severity
from .registry import MachineContext, register_rule

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.family import FamilyAnalysis

register_rule(
    "family.entangled-control",
    "pure-control obligation typed width-entangled",
    Severity.ERROR,
    target="machine",
    description="an invariant whose cone of influence contains no"
    " width-scaled state still typed entangled; the paired bisimulation"
    " broke or control observes datapath values through an unsanctioned"
    " channel, and the obligation must be re-proved at every width",
)
register_rule(
    "family.width-cutoff",
    "family verdicts certified at the cutoff width",
    Severity.INFO,
    target="machine",
    description="certified obligations were discharged once at the"
    " family's cutoff width w0; the cached family verdicts serve every"
    " member width >= w0, smaller widths are discharged directly",
)


def lint_family(
    analysis: "FamilyAnalysis", config: LintConfig | None = None
) -> LintResult:
    """Render one family analysis through the lint registry.

    ``analysis`` is the output of
    :func:`repro.analysis.family.analyze_family`; the diagnostics attach
    to the base-width instance's module.
    """
    config = config or LintConfig()
    result = LintResult()
    pipelined = analysis.base
    context = MachineContext(
        config=config,
        result=result,
        module_name=pipelined.module.name,
        ignores=getattr(pipelined.module, "lint_ignores", {}),
        machine=pipelined.machine,
        pipelined=pipelined,
    )
    for certificate in analysis.certificates.values():
        if certificate.certified or certificate.kind != "invariant":
            continue
        if certificate.counts.get("scaled_support") != 0:
            continue
        if "entangled" not in certificate.reason:
            continue
        context.emit(
            "family.entangled-control",
            f"obligation:{certificate.oid}",
            f"invariant {certificate.oid} reads only width-invariant"
            f" control state yet typed entangled"
            f" ({certificate.entangled_nodes} entangled node pair(s));"
            " the width family cannot share its verdict",
            oid=certificate.oid,
            entangled_nodes=certificate.entangled_nodes,
        )
    certified = analysis.certified()
    if certified:
        spec = analysis.spec
        context.emit(
            "family.width-cutoff",
            f"family:{spec.name}",
            f"{len(certified)} of {len(analysis.certificates)} obligations"
            f" certified width-parametric at cutoff w0={spec.base_width};"
            f" cached verdicts cover every width >= {spec.base_width}"
            f" (members: {', '.join(str(w) for w in spec.widths)})",
            certified=len(certified),
            total=len(analysis.certificates),
            cutoff_width=spec.base_width,
        )
    return result
