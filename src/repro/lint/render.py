"""Render a :class:`..diagnostics.LintResult` as text, JSON or SARIF.

The SARIF output follows the 2.1.0 schema closely enough for GitHub code
scanning and VS Code's SARIF viewer: one run, one tool driver carrying
the full rule table, one result per diagnostic with the element path as a
logical location (netlists have no physical source files).
"""

from __future__ import annotations

import json

from .diagnostics import SARIF_LEVELS, Diagnostic, LintResult
from .registry import rule_table

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"


def render_text(result: LintResult) -> str:
    """One line per diagnostic plus a summary line."""
    lines = [diagnostic.format() for diagnostic in result]
    lines.append(f"lint: {result.summary()}")
    return "\n".join(lines)


def render_json(result: LintResult, *, indent: int | None = 2) -> str:
    payload = {
        "tool": TOOL_NAME,
        "summary": result.counts(),
        "diagnostics": [diagnostic.to_dict() for diagnostic in result],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)


def _sarif_result(diagnostic: Diagnostic) -> dict:
    return {
        "ruleId": diagnostic.rule,
        "level": SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": (
                            f"{diagnostic.module}::{diagnostic.path}"
                        ),
                        "kind": "member",
                    }
                ]
            }
        ],
        "properties": dict(diagnostic.data),
    }


def render_sarif(result: LintResult, *, indent: int | None = 2) -> str:
    rules = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.description or rule.title},
            "defaultConfiguration": {
                "level": SARIF_LEVELS[rule.severity],
            },
            "properties": {"target": rule.target},
        }
        for rule in sorted(
            rule_table().values(), key=lambda rule: rule.rule_id
        )
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": (
                            "https://github.com/example/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(diagnostic) for diagnostic in result
                ],
            }
        ],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def render(result: LintResult, format: str = "text") -> str:
    try:
        renderer = RENDERERS[format]
    except KeyError:
        raise ValueError(
            f"unknown lint format {format!r}; use one of {sorted(RENDERERS)}"
        ) from None
    return renderer(result)
