"""Information-flow taint analysis over the hash-consed expression DAG.

Speculation (paper, Section 5) is only correct if speculative state can
never influence architectural state except through the sanctioned
channel: the guess comparator's squash-or-not outcome.  This pass checks
that *statically*, in one walk over the transformed netlist:

* **Sources** are the labeled state classes a
  :class:`repro.machine.prepared.PreparedMachine` declares (derived from
  its speculation annotations plus designer ``label_state`` entries):
  piped guess values (``SPEC_GUESS``), pre-commit stage results
  (``PRECOMMIT``) and the squash-window occupancy bits
  (``ROLLBACK_TAG``).
* **Transfer functions** propagate per-node taint sets bottom-up.  The
  rules are mux-precise and sharpened by the absint fixpoint
  (:func:`repro.absint.shared_fixpoint`): a node whose abstract value is
  constant over every reachable state carries no information and drops
  all taint; a mux whose select is reachably constant taints only from
  the live arm (and not from the select); a binary operator with one
  reachably-constant operand taints only from the other.
* **Declassification** happens at the guess comparator: the mispredict
  net's taint is ``SPEC_CTRL`` regardless of what flows in — the paper
  sanctions exactly this one-bit digest steering repairs and squashes.

On top of propagation, declared **non-interference policies** become
ordinary lint rules through the registry/severity/waiver machinery:

* ``taint.spec-to-arch`` — architectural write-port data/addr and
  unrepaired visible-register updates must not carry raw ``SPEC_GUESS``
  or ``PRECOMMIT`` taint;
* ``taint.spec-to-select`` — stall and forwarding-select nets must not
  read raw guesses (``SPEC_GUESS``); rollback tags and declassified
  control are the commit guard working as intended and are allowed;
* ``taint.rollback-escape`` — every squash-window full bit must keep a
  live dependence on its ``rollback'`` net, else squashed wrong-path
  instructions survive;
* ``taint.unguarded-commit`` — every architectural write-port enable
  must keep a live dependence on the write stage's occupancy bit;
* ``taint.unguarded-forward`` — no forwarding valid bit may be reachably
  constant 1 (a value claimed final before its producer wrote it).

The first two are *absence-of-flow* claims; each clean verdict can be
cross-checked against ground truth by a SAT two-copy self-composition
(:mod:`repro.formal.noninterference`).  The last three are
*presence-of-guard* claims the fault campaign's seeded leak mutants
(dropped commit guard, rollback-tag bypass, early valid) must trip.

Like :mod:`.semantic`, this family is not part of the default pass
lists — call :func:`lint_taint` explicitly (the fault ladder's taint
rung and the discharge engine's taint gate do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..absint.fixpoint import FixpointResult, shared_fixpoint
from ..hdl import expr as E
from ..machine.prepared import PRECOMMIT, SPEC_CTRL, SPEC_GUESS
from .diagnostics import LintConfig, LintResult, Severity
from .registry import MachineContext, register_rule

if TYPE_CHECKING:  # pragma: no cover
    from ..core.transform import PipelinedMachine

register_rule(
    "taint.spec-to-arch",
    "speculative value taints an architectural write",
    Severity.ERROR,
    target="machine",
    description="an architectural write port's data/address or a visible"
    " register's update carries raw speculative (guess or pre-commit)"
    " taint without passing the resolve-stage comparator; wrong-path"
    " values can commit",
)
register_rule(
    "taint.spec-to-select",
    "raw guess taints a stall/forwarding select",
    Severity.ERROR,
    target="machine",
    description="a stall or forwarding-select net depends on an in-flight"
    " guess value directly, not via the declassified mispredict outcome;"
    " schedule decisions would leak speculative data",
)
register_rule(
    "taint.rollback-escape",
    "squash-window full bit ignores its rollback net",
    Severity.ERROR,
    target="machine",
    description="the next-state function of a full bit inside a"
    " speculation's squash window no longer consults rollback'; squashed"
    " wrong-path instructions keep their occupancy tag and commit",
)
register_rule(
    "taint.unguarded-commit",
    "architectural write enable lacks its occupancy guard",
    Severity.ERROR,
    target="machine",
    description="a visible register file's write-port enable does not"
    " depend on the write stage's full bit; bubbles and squashed"
    " instructions would write architectural state",
)
register_rule(
    "taint.unguarded-forward",
    "forwarding valid bit is reachably constant 1",
    Severity.ERROR,
    target="machine",
    description="a forwarding valid bit claims the forwarded value final"
    " in every reachable state; consumers would read operands their"
    " producer has not written yet",
)


def _full_bit_name(stage: int) -> str:
    from ..core.stall_engine import full_bit_name

    return full_bit_name(stage)


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------

_EMPTY: frozenset[str] = frozenset()


class TaintAnalysis:
    """Per-node taint sets over one pipelined machine's netlist.

    ``sources`` maps register names to label sets (the machine's state
    classes restricted to registers that exist in the module);
    ``declassifiers`` are the mispredict nets, pre-seeded to
    ``{SPEC_CTRL}``.  Taint queries are memoised on interned node ids.
    """

    def __init__(
        self,
        pipelined: "PipelinedMachine",
        fixpoint: FixpointResult | None = None,
    ) -> None:
        self.pipelined = pipelined
        module = pipelined.module
        self.fixpoint = fixpoint or shared_fixpoint(module)
        self.sources: dict[str, frozenset[str]] = {
            name: frozenset(classes)
            for name, classes in pipelined.machine.state_classes().items()
            if name in module.registers
        }
        self.declassifiers: tuple[E.Expr, ...] = tuple(
            hardware.mispredict for hardware in pipelined.speculations
        )
        self._memo: dict[int, frozenset[str]] = {
            id(node): frozenset((SPEC_CTRL,)) for node in self.declassifiers
        }

    def taint(self, root: E.Expr) -> frozenset[str]:
        memo = self._memo
        for node in E.walk([root]):
            if id(node) not in memo:
                memo[id(node)] = self._transfer(node)
        return memo[id(root)]

    def _const(self, node: E.Expr) -> bool:
        return self.fixpoint.eval(node).is_const()

    def _transfer(self, node: E.Expr) -> frozenset[str]:
        # a reachably-constant node carries no information at all — this
        # one rule implements the "masked bits drop taint" sharpening for
        # constant masks, zero AND-operands and folded selects alike
        if isinstance(node, (E.Const, E.Input)):
            return _EMPTY
        if self._const(node):
            return _EMPTY
        memo = self._memo
        if isinstance(node, E.RegRead):
            return self.sources.get(node.name, _EMPTY)
        if isinstance(node, E.Mux):
            sel_value = self.fixpoint.eval(node.sel)
            if sel_value.is_const():
                # constant select: only the live arm flows, and the
                # select itself reveals nothing
                arm = node.then if (sel_value.lo & 1) else node.els
                return memo[id(arm)]
            return memo[id(node.sel)] | memo[id(node.then)] | memo[id(node.els)]
        if isinstance(node, E.Binary):
            # a reachably-constant operand contributes no information
            if self._const(node.a):
                return memo[id(node.b)]
            if self._const(node.b):
                return memo[id(node.a)]
            return memo[id(node.a)] | memo[id(node.b)]
        if isinstance(node, E.Unary):
            return memo[id(node.a)]
        if isinstance(node, E.Slice):
            return memo[id(node.a)]
        if isinstance(node, E.Concat):
            result = _EMPTY
            for part in node.parts:
                result = result | memo[id(part)]
            return result
        if isinstance(node, E.MemRead):
            # memory contents are architectural; the read leaks only
            # through its address
            return memo[id(node.addr)]
        raise AssertionError(type(node).__name__)


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyVerdict:
    """One non-interference policy instance: a sink, the taint classes it
    must not carry, and what propagation actually found.

    ``sources``/``declassifiers`` record the two-copy SAT query that
    validates a clean verdict: the sink must be unsatisfiably different
    across two copies that disagree only on the source registers, with
    the declassifier nets tied equal.
    """

    rule: str
    path: str  # element path of the sink, e.g. "memory:GPR.w0.data"
    sink: E.Expr
    forbidden: frozenset[str]
    found: frozenset[str]
    sources: tuple[str, ...]
    declassifiers: tuple[E.Expr, ...]

    @property
    def clean(self) -> bool:
        return not self.found


def _arch_sinks(pipelined: "PipelinedMachine") -> list[tuple[str, E.Expr]]:
    """Architectural value sinks: write-port data/addr of visible register
    files and the update of visible registers that no speculation repairs
    (a repaired register is protected by the repair path itself, which
    the guard rules check)."""
    machine = pipelined.machine
    module = pipelined.module
    sinks: list[tuple[str, E.Expr]] = []
    for regfile in machine.visible_regfiles():
        memory = module.memories.get(regfile.name)
        if memory is None:
            continue
        for index, port in enumerate(memory.write_ports):
            sinks.append((f"memory:{regfile.name}.w{index}.data", port.data))
            sinks.append((f"memory:{regfile.name}.w{index}.addr", port.addr))
    repaired = {
        target
        for hardware in pipelined.speculations
        for target in hardware.spec.repairs
    }
    for reg in machine.visible_registers():
        name = reg.instance_name(reg.last)
        if name in repaired or name not in module.registers:
            continue
        sinks.append((f"register:{name}", module.registers[name].next))
    return sinks


def _select_sinks(pipelined: "PipelinedMachine") -> list[tuple[str, E.Expr]]:
    """Schedule sinks: the stall chain, per-read forwarding selects and
    the squash/refill controls (the full-bit next functions).

    The full bits are the one place raw guesses legitimately *approach*
    the schedule — but only through the resolve comparator, whose
    mispredict digest is declassified.  Including them makes the policy
    (and its SAT cross-check) witness the declassification instead of
    holding vacuously."""
    sinks: list[tuple[str, E.Expr]] = []
    for stage, stall in enumerate(pipelined.engine.stall):
        if not isinstance(stall, E.Const):
            sinks.append((f"probe:stall.{stage}", stall))
    for stage in range(1, pipelined.n_stages):
        name = _full_bit_name(stage)
        reg = pipelined.module.registers.get(name)
        if reg is not None and not isinstance(reg.next, E.Const):
            sinks.append((f"register:{name}", reg.next))
    for index, network in enumerate(pipelined.networks):
        for j in network.hit_stages:
            hit = network.hits.get(j)
            if hit is not None and not isinstance(hit, E.Const):
                sinks.append(
                    (f"machine:{network.regfile}@{network.stage}.hit{j}", hit)
                )
    return sinks


def taint_verdicts(
    pipelined: "PipelinedMachine",
    fixpoint: FixpointResult | None = None,
    analysis: TaintAnalysis | None = None,
) -> list[PolicyVerdict]:
    """Evaluate the absence-of-flow policies (the SAT-cross-checkable
    half of :func:`lint_taint`)."""
    analysis = analysis or TaintAnalysis(pipelined, fixpoint)
    policies: list[tuple[str, frozenset[str], list[tuple[str, E.Expr]]]] = [
        (
            "taint.spec-to-arch",
            frozenset((SPEC_GUESS, PRECOMMIT)),
            _arch_sinks(pipelined),
        ),
        (
            "taint.spec-to-select",
            frozenset((SPEC_GUESS,)),
            _select_sinks(pipelined),
        ),
    ]
    verdicts: list[PolicyVerdict] = []
    for rule, forbidden, sinks in policies:
        labeled = tuple(
            sorted(
                name
                for name, classes in analysis.sources.items()
                if classes & forbidden
            )
        )
        for path, sink in sinks:
            found = analysis.taint(sink) & forbidden
            in_cone = E.reg_reads([sink])
            verdicts.append(
                PolicyVerdict(
                    rule=rule,
                    path=path,
                    sink=sink,
                    forbidden=forbidden,
                    found=found,
                    sources=tuple(n for n in labeled if n in in_cone),
                    declassifiers=analysis.declassifiers,
                )
            )
    return verdicts


# ---------------------------------------------------------------------------
# Guard checks + entry point
# ---------------------------------------------------------------------------


def _check_rollback_escape(context: MachineContext, analysis: TaintAnalysis) -> None:
    from ..hdl.subst import substitute
    from .structural import ternary_eval

    pipelined = context.pipelined
    module = pipelined.module
    checked: set[int] = set()
    for hardware in pipelined.speculations:
        spec = hardware.spec
        for stage in range(1, spec.resolve_stage + 1):
            if stage in checked:
                continue
            checked.add(stage)
            name = _full_bit_name(stage)
            reg = module.registers.get(name)
            prime = pipelined.engine.rollback_prime[stage]
            if reg is None or isinstance(prime, E.Const):
                continue
            # the squash contract: rollback'_s = 1 must force the full
            # bit to 0 no matter what the rest of the state holds.  A
            # mere reachability check is too weak — the prime chain is
            # built back-to-front, so rollback'_s is a *sub-node* of
            # ue_{s-1} and survives in the walk even when the gate is
            # dropped; ternary propagation under the one assumption
            # decides the actual implication.
            assumed = substitute(reg.next, memo={id(prime): E.const(1, 1)})
            known, value = ternary_eval([assumed]).get(id(assumed), (0, 0))
            if known == 1 and value == 0:
                continue
            context.emit(
                "taint.rollback-escape",
                f"register:{name}",
                f"full bit {name} (squash window of speculation"
                f" {spec.name!r}) is not forced to 0 by"
                f" rollback'_{stage}; wrong-path instructions in"
                f" stage {stage} escape the squash",
                speculation=spec.name,
                stage=stage,
            )


def _check_unguarded_commit(context: MachineContext, analysis: TaintAnalysis) -> None:
    pipelined = context.pipelined
    module = pipelined.module
    for regfile in pipelined.machine.visible_regfiles():
        memory = module.memories.get(regfile.name)
        stage = regfile.write_stage
        full = pipelined.engine.full[stage]
        if memory is None or isinstance(full, E.Const):
            continue
        guard = _full_bit_name(stage)
        for index, port in enumerate(memory.write_ports):
            if guard in E.reg_reads([port.enable]):
                continue
            context.emit(
                "taint.unguarded-commit",
                f"memory:{regfile.name}.w{index}",
                f"write port {index} of {regfile.name!r} commits without"
                f" consulting {guard}; empty or squashed stage {stage}"
                " slots would write architectural state",
                stage=stage,
            )


def _check_unguarded_forward(context: MachineContext, analysis: TaintAnalysis) -> None:
    from ..core.forwarding import valid_bit_name

    pipelined = context.pipelined
    module = pipelined.module
    names = {
        valid_bit_name(network.regfile, stage)
        for network in pipelined.networks
        for stage in range(pipelined.n_stages + 1)
    }
    for name in sorted(names & set(module.registers)):
        next_value = analysis.fixpoint.eval(module.registers[name].next)
        if next_value.is_const() and next_value.lo == 1:
            context.emit(
                "taint.unguarded-forward",
                f"register:{name}",
                f"forwarding valid bit {name} is reachably constant 1:"
                " the chain claims the forwarded value final before its"
                " producer decides to write it",
            )


def lint_taint(
    pipelined: "PipelinedMachine",
    config: LintConfig | None = None,
    fixpoint: FixpointResult | None = None,
    analysis: TaintAnalysis | None = None,
) -> LintResult:
    """Run the taint propagation and every non-interference policy over
    one pipelined machine.

    ``fixpoint`` may be supplied to reuse an existing absint analysis
    (the fault ladder and the discharge gate both already have one);
    ``analysis`` to reuse the propagation itself (the SAT cross-check
    driver does).
    """
    config = config or LintConfig()
    result = LintResult()
    context = MachineContext(
        config=config,
        result=result,
        module_name=pipelined.module.name,
        ignores=getattr(pipelined.module, "lint_ignores", {}),
        machine=pipelined.machine,
        pipelined=pipelined,
    )
    analysis = analysis or TaintAnalysis(pipelined, fixpoint)
    for verdict in taint_verdicts(pipelined, analysis=analysis):
        if verdict.clean:
            continue
        classes = ", ".join(sorted(verdict.found))
        context.emit(
            verdict.rule,
            verdict.path,
            f"sink carries {classes} taint from in-flight speculation"
            f" ({len(verdict.sources)} labeled source register(s))"
            " without passing a commit guard",
            classes=classes,
        )
    _check_rollback_escape(context, analysis)
    _check_unguarded_commit(context, analysis)
    _check_unguarded_forward(context, analysis)
    return result
