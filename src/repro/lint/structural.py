"""Structural lint passes over a :class:`repro.hdl.netlist.Module`.

The pass family (run in registration order by :func:`..registry.lint_module`):

1. **validation** — every violation collected by :meth:`Module.check`
   (undefined names, width mismatches, undriven registers) as a
   diagnostic instead of a first-fail exception;
2. **combinational cycles** — Tarjan SCC over the expression/probe
   graph.  Hash-consed construction cannot create cycles, but hand-built
   or pass-mutated nodes can, and every downstream analysis (simulation,
   bit-blasting, constant propagation) assumes a DAG;
3. **dataflow** — ternary (0/1/X) constant propagation: never-enabled
   and frozen registers, probes that compute constants through logic the
   constructors could not fold, unreachable mux arms, dead memory write
   ports, and write ports whose enables are not provably exclusive;
4. **width smells** — slices that silently discard the high bits of
   arithmetic, slices of concatenations;
5. **budgets** — per-cone delay and whole-module cost against the
   :class:`..diagnostics.LintConfig` budgets, reusing
   :mod:`repro.hdl.analyze`'s unit-gate model.
"""

from __future__ import annotations

from ..absint.domain import UNKNOWN, Ternary, ternary_transfer
from ..hdl import expr as E
from ..hdl.analyze import node_cost, node_delay
from ..hdl.bitvec import mask
from ..hdl.netlist import Module
from .diagnostics import Severity
from .registry import ModuleContext, module_pass, register_rule

# ---------------------------------------------------------------------------
# Rule declarations
# ---------------------------------------------------------------------------

register_rule(
    "undefined-register",
    "read of an undeclared register",
    Severity.ERROR,
    description="an expression reads a register name the module never"
    " declared; simulation and bit-blasting have no value to supply",
)
register_rule(
    "undefined-memory",
    "read of an undeclared memory",
    Severity.ERROR,
    description="an expression reads a memory name the module never"
    " declared; no words exist to select from",
)
register_rule(
    "undefined-input",
    "read of an undeclared input",
    Severity.ERROR,
    description="an expression reads an input port the module never"
    " declared; the environment has nothing to drive",
)
register_rule(
    "width-mismatch",
    "read width disagrees with declaration",
    Severity.ERROR,
    description="a register/memory/input read asks for a different bit"
    " width than the declaration provides; downstream logic would be"
    " silently truncated or padded",
)
register_rule(
    "undriven-register",
    "register next value never driven after declaration",
    Severity.WARNING,
    description="the register still has its declaration-time default"
    " next value; either the drive was forgotten or the register is"
    " dead state",
)
register_rule(
    "comb-cycle",
    "combinational cycle in the expression graph",
    Severity.ERROR,
    description="an expression is reachable from itself without passing"
    " through a register; the netlist has no well-defined value",
)
register_rule(
    "never-enabled-register",
    "register enable is constant 0",
    Severity.WARNING,
    description="dataflow analysis proves the clock enable never fires;"
    " the register is frozen at its initial value and its update logic"
    " is dead",
)
register_rule(
    "constant-net",
    "net computes a constant through non-constant logic",
    Severity.WARNING,
    description="ternary constant propagation reduces this net to one"
    " value even though the constructors could not fold it; the logic"
    " computing it is redundant",
)
register_rule(
    "unreachable-mux-arm",
    "mux select is constant under dataflow analysis",
    Severity.WARNING,
    description="one arm of the mux can never be selected; the dead arm"
    " hides either redundant hardware or a wiring mistake",
)
register_rule(
    "dead-write-port",
    "memory write enable is constant 0",
    Severity.WARNING,
    description="the port can never commit a write; the memory content"
    " is effectively read-only through this port",
)
register_rule(
    "memory-write-overlap",
    "write-port enables not provably exclusive",
    Severity.WARNING,
    description="write ports are applied in list order; overlapping"
    " enables make the priority encoding load-bearing",
)
register_rule(
    "narrowed-arithmetic",
    "slice discards the high bits of an arithmetic result",
    Severity.INFO,
    description="an add/sub/mul result is sliced below its natural"
    " width; overflow bits are silently dropped, which is worth a"
    " deliberate look",
)
register_rule(
    "slice-of-concat",
    "slice re-splits a concatenation",
    Severity.INFO,
    description="a slice reaches into a concatenation it could reference"
    " directly; usually a sign of width bookkeeping done twice",
)
register_rule(
    "delay-budget",
    "combinational cone exceeds the delay budget",
    Severity.WARNING,
    description="the unit-gate critical path of this cone exceeds the"
    " configured max_delay budget",
)
register_rule(
    "cost-budget",
    "module exceeds the gate-cost budget",
    Severity.WARNING,
    description="the unit-gate cost of the whole module exceeds the"
    " configured max_cost budget",
)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def named_roots(module: Module) -> list[tuple[str, E.Expr]]:
    """Expression roots paired with the element path that owns them."""
    roots: list[tuple[str, E.Expr]] = []
    for name, reg in module.registers.items():
        roots.append((f"register:{name}", reg.next))
        roots.append((f"register:{name}", reg.enable))
    for name, memory in module.memories.items():
        for port in memory.write_ports:
            roots.append((f"memory:{name}", port.enable))
            roots.append((f"memory:{name}", port.addr))
            roots.append((f"memory:{name}", port.data))
    for name, value in module.probes.items():
        roots.append((f"probe:{name}", value))
    return roots


def _owner_map(roots: list[tuple[str, E.Expr]]) -> dict[int, str]:
    """First-seen owner path for every reachable node (for attribution)."""
    owner: dict[int, str] = {}
    for path, root in roots:
        for node in E.walk([root]):
            owner.setdefault(id(node), path)
    return owner


# ---------------------------------------------------------------------------
# Pass 1: netlist validation issues as diagnostics
# ---------------------------------------------------------------------------


@module_pass
def pass_validation(ctx: ModuleContext) -> None:
    for issue in ctx.module.check():
        ctx.emit(issue.code, issue.path, issue.message)


# ---------------------------------------------------------------------------
# Pass 2: combinational cycle detection (Tarjan SCC)
# ---------------------------------------------------------------------------


def find_cycles(roots: list[E.Expr]) -> list[list[E.Expr]]:
    """Strongly connected components of size > 1 (or with a self-loop)
    in the expression graph, via iterative Tarjan."""
    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[E.Expr] = []
    sccs: list[list[E.Expr]] = []
    counter = 0

    for root in roots:
        if id(root) in index:
            continue
        # work items: (node, child iterator position)
        work: list[tuple[E.Expr, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[id(node)] = lowlink[id(node)] = counter
                counter += 1
                stack.append(node)
                on_stack.add(id(node))
            children = node.children()
            recurred = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if id(child) not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    recurred = True
                    break
                if id(child) in on_stack:
                    lowlink[id(node)] = min(
                        lowlink[id(node)], index[id(child)]
                    )
            if recurred:
                continue
            work.pop()
            if lowlink[id(node)] == index[id(node)]:
                component: list[E.Expr] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    component.append(member)
                    if member is node:
                        break
                if len(component) > 1 or any(
                    child is node for child in node.children()
                ):
                    sccs.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[id(parent)] = min(
                    lowlink[id(parent)], lowlink[id(node)]
                )
    return sccs


@module_pass
def pass_cycles(ctx: ModuleContext) -> None:
    roots = named_roots(ctx.module)
    owner = _owner_map(roots)
    cycles = find_cycles([root for _path, root in roots])
    ctx.acyclic = not cycles
    for component in cycles:
        path = owner.get(id(component[0]), "module:" + ctx.module.name)
        ctx.emit(
            "comb-cycle",
            path,
            f"combinational cycle through {len(component)} node(s):"
            f" {', '.join(repr(n) for n in component[:4])}"
            + (" ..." if len(component) > 4 else ""),
            nodes=len(component),
        )


# ---------------------------------------------------------------------------
# Pass 3: ternary (0/1/X) constant propagation
# ---------------------------------------------------------------------------

# The per-operator known-bits rules live in repro.absint.domain (shared
# with the fixpoint abstract interpreter); this pass supplies the one-shot
# DAG walk and the frozen-register leaf facts.


def _frozen_registers(module: Module) -> dict[str, int]:
    """Registers provably stuck at their initial value: enable constant 0,
    or next-value literally the register's own read."""
    frozen: dict[str, int] = {}
    for name, reg in module.registers.items():
        if isinstance(reg.enable, E.Const) and reg.enable.value == 0:
            frozen[name] = reg.init
        elif isinstance(reg.next, E.RegRead) and reg.next.name == name:
            frozen[name] = reg.init
    return frozen


def ternary_eval(
    roots: list[E.Expr], frozen: dict[str, int] | None = None
) -> dict[int, Ternary]:
    """Per-node ternary constant propagation over a DAG.

    Returns ``id(node) -> (known mask, value)``.  ``frozen`` optionally
    seeds register reads with known-constant contents.
    """
    frozen = frozen or {}

    def reg_bits(node: E.Expr) -> Ternary:
        assert isinstance(node, E.RegRead)
        if node.name in frozen:
            full = mask(node.width)
            return (full, frozen[node.name] & full)
        return UNKNOWN

    values: dict[int, Ternary] = {}
    for node in E.walk(roots):
        values[id(node)] = ternary_transfer(
            node, lambda n: values[id(n)], reg_bits=reg_bits
        )
    return values


@module_pass
def pass_dataflow(ctx: ModuleContext) -> None:
    if not getattr(ctx, "acyclic", True):
        return  # constant propagation assumes a DAG
    module = ctx.module
    roots = named_roots(module)
    owner = _owner_map(roots)
    frozen = _frozen_registers(module)
    ternary = ternary_eval([root for _path, root in roots], frozen)

    # never-enabled / frozen registers ------------------------------------
    for name, reg in module.registers.items():
        path = f"register:{name}"
        k_en, v_en = ternary.get(id(reg.enable), UNKNOWN)
        if k_en & 1 and not (v_en & 1):
            ctx.emit(
                "never-enabled-register",
                path,
                f"register {name!r} has a constant-0 enable; it can never"
                " leave its initial value"
                f" {reg.init:#x}",
            )
            continue
        if isinstance(reg.next, E.RegRead) and reg.next.name == name:
            continue  # a hold register; undriven-register covers the smell
        k_next, v_next = ternary.get(id(reg.next), UNKNOWN)
        if (
            k_next == mask(reg.width)
            and not isinstance(reg.next, E.Const)
            and v_next == reg.init
        ):
            ctx.emit(
                "constant-net",
                path,
                f"register {name!r} always reloads its initial value"
                f" {reg.init:#x}; the driving logic is dead",
                value=v_next,
            )

    # constant probes ------------------------------------------------------
    for name, value in module.probes.items():
        known, v = ternary.get(id(value), UNKNOWN)
        if known == mask(value.width) and not isinstance(value, E.Const):
            ctx.emit(
                "constant-net",
                f"probe:{name}",
                f"probe {name!r} computes the constant {v:#x} through"
                " logic the constructors could not fold",
                value=v,
            )

    # unreachable mux arms -------------------------------------------------
    for node in E.walk([root for _path, root in roots]):
        if isinstance(node, E.Mux):
            k_sel, v_sel = ternary.get(id(node.sel), UNKNOWN)
            if k_sel & 1:
                arm = "else" if v_sel & 1 else "then"
                ctx.emit(
                    "unreachable-mux-arm",
                    owner.get(id(node), f"module:{module.name}"),
                    f"mux select is constant {v_sel & 1} under dataflow"
                    f" analysis; the {arm!r} arm is unreachable",
                    select=v_sel & 1,
                )

    # memory write ports ---------------------------------------------------
    for name, memory in module.memories.items():
        path = f"memory:{name}"
        live_ports = []
        for position, port in enumerate(memory.write_ports):
            k_en, v_en = ternary.get(id(port.enable), UNKNOWN)
            if k_en & 1 and not (v_en & 1):
                ctx.emit(
                    "dead-write-port",
                    path,
                    f"write port {position} of memory {name!r} has a"
                    " constant-0 enable and can never write",
                    port=position,
                )
            else:
                live_ports.append((position, port))
        for i in range(len(live_ports)):
            for j in range(i + 1, len(live_ports)):
                pos_a, port_a = live_ports[i]
                pos_b, port_b = live_ports[j]
                if _provably_exclusive(port_a, port_b, ternary):
                    continue
                ctx.emit(
                    "memory-write-overlap",
                    path,
                    f"write ports {pos_a} and {pos_b} of memory {name!r}"
                    " may fire on the same address in the same cycle;"
                    " the later port silently wins",
                    ports=(pos_a, pos_b),
                )


def _and_factors(expression: E.Expr) -> list[E.Expr]:
    """Flatten nested AND into its conjuncts."""
    if isinstance(expression, E.Binary) and expression.op == "AND":
        return _and_factors(expression.a) + _and_factors(expression.b)
    return [expression]


def _provably_exclusive(port_a, port_b, ternary: dict[int, Ternary]) -> bool:
    """Can these two write ports never write the same word together?"""
    # distinct constant addresses never collide
    ka, va = ternary.get(id(port_a.addr), UNKNOWN)
    kb, vb = ternary.get(id(port_b.addr), UNKNOWN)
    width = port_a.addr.width
    if ka == mask(width) and kb == mask(width) and va != vb:
        return True
    # complementary AND-factors in the enables (e vs NOT e)
    factors_a = _and_factors(port_a.enable)
    factors_b = _and_factors(port_b.enable)
    ids_a = {id(f) for f in factors_a}
    ids_b = {id(f) for f in factors_b}
    for factor in factors_a:
        if isinstance(factor, E.Unary) and factor.op == "NOT":
            if id(factor.a) in ids_b:
                return True
    for factor in factors_b:
        if isinstance(factor, E.Unary) and factor.op == "NOT":
            if id(factor.a) in ids_a:
                return True
    return False


# ---------------------------------------------------------------------------
# Pass 4: width-narrowing smells
# ---------------------------------------------------------------------------

_NARROWING_OPS = frozenset({"ADD", "SUB", "MUL"})


@module_pass
def pass_width_smells(ctx: ModuleContext) -> None:
    roots = named_roots(ctx.module)
    owner = _owner_map(roots)
    for node in E.walk([root for _path, root in roots]):
        if not isinstance(node, E.Slice):
            continue
        child = node.a
        path = owner.get(id(node), f"module:{ctx.module.name}")
        narrows = (
            isinstance(child, E.Binary) and child.op in _NARROWING_OPS
        ) or (isinstance(child, E.Unary) and child.op == "NEG")
        if narrows and node.high < child.width - 1:
            op = child.op  # type: ignore[union-attr]
            ctx.emit(
                "narrowed-arithmetic",
                path,
                f"slice [{node.high}:{node.low}] discards the top"
                f" {child.width - 1 - node.high} bit(s) of a {op} result;"
                " overflow is silently truncated",
                op=op,
            )
        elif isinstance(child, E.Concat):
            ctx.emit(
                "slice-of-concat",
                path,
                f"slice [{node.high}:{node.low}] re-splits a concatenation;"
                " select the parts directly instead",
            )


# ---------------------------------------------------------------------------
# Pass 5: cost / delay budgets (reusing hdl.analyze's unit-gate model)
# ---------------------------------------------------------------------------


@module_pass
def pass_budgets(ctx: ModuleContext) -> None:
    config = ctx.config
    if config.max_delay is None and config.max_cost is None:
        return
    if not getattr(ctx, "acyclic", True):
        return  # arrival times are undefined on a cyclic graph
    roots = named_roots(ctx.module)
    order = E.walk([root for _path, root in roots])
    arrival: dict[int, float] = {}
    total_cost = 0.0
    for node in order:
        children_delay = max(
            (arrival[id(child)] for child in node.children()), default=0.0
        )
        arrival[id(node)] = children_delay + node_delay(node)
        total_cost += node_cost(node)
    if config.max_delay is not None:
        for path, root in roots:
            delay = arrival.get(id(root), 0.0)
            if delay > config.max_delay:
                ctx.emit(
                    "delay-budget",
                    path,
                    f"combinational cone reaches {delay:.0f} gate delays"
                    f" (> budget {config.max_delay:g})",
                    delay=delay,
                )
    if config.max_cost is not None and total_cost > config.max_cost:
        ctx.emit(
            "cost-budget",
            f"module:{ctx.module.name}",
            f"module costs {total_cost:.0f} gate equivalents"
            f" (> budget {config.max_cost:g})",
            cost=total_cost,
        )
