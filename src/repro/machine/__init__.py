"""Prepared sequential machine model and its sequential elaboration."""

from .elaborate import (
    elaborate_datapath,
    identity_rewriter,
    precomputed_wa,
    precomputed_we,
)
from .prepared import (
    ForwardingRegister,
    InvariantTemplate,
    MachineSpecError,
    PipelineRegister,
    PreparedMachine,
    RegisterFile,
    SpeculationSpec,
    StageOutput,
)
from .deep import build_deep_machine, encode_deep
from .sequential import STAGE_COUNTER, build_sequential, sequential_schedule
from . import toy

__all__ = [
    "ForwardingRegister",
    "InvariantTemplate",
    "MachineSpecError",
    "PipelineRegister",
    "PreparedMachine",
    "RegisterFile",
    "STAGE_COUNTER",
    "SpeculationSpec",
    "StageOutput",
    "build_deep_machine",
    "build_sequential",
    "elaborate_datapath",
    "encode_deep",
    "toy",
    "identity_rewriter",
    "precomputed_wa",
    "precomputed_we",
    "sequential_schedule",
]
