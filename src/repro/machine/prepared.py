"""The *prepared sequential machine* model (paper, Section 2).

A prepared sequential machine is a sequential processor whose hardware has
already been partitioned into ``n`` pipeline stages (steps 1 and 2 of the
textbook pipelining recipe), but which still executes one instruction at a
time and contains **no** forwarding or interlock hardware.  It is the input
to the transformation tool.

The designer provides:

* the list of registers, their widths/domains, and the stages they belong
  to — a register ``R`` written by stage ``k-1`` and read by stage ``k`` is
  the *instance* ``R.k`` (paper notation ``R:k``);
* register files with their address width ``alpha(R)`` and the stage ``w``
  that writes them;
* the data-path functions ``f^k`` of every stage, as expressions over the
  stage's input registers, together with write-enable functions
  ``f^k_Rwe`` and (for register files) write-address functions ``f^k_Rwa``
  and read addresses ``f^k_Rra``;
* for forwarded register files, the *forwarding registers* (paper,
  Section 4.1: the designer names the registers holding intermediate
  results, e.g. ``C.2``/``C.3`` in the five-stage DLX) — this is the only
  manual input the forwarding synthesis needs;
* optionally, speculation annotations (paper, Section 5).

The model deliberately does not know anything about stalls, hazards or
forwarding: those are synthesized by :mod:`repro.core.transform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hdl import expr as E


class MachineSpecError(ValueError):
    """Raised for ill-formed prepared machine descriptions."""


# ---------------------------------------------------------------------------
# Information-flow state classes (consumed by repro.lint.taint)
# ---------------------------------------------------------------------------

#: Raw speculative values in flight: the piped guess registers between the
#: guessing stage and the resolving comparator.  Until resolution these may
#: be arbitrary wrong-path data and must never reach architectural state.
SPEC_GUESS = "spec-guess"

#: Resolved speculation control: the squash-or-not outcome of the guess
#: comparator.  This is the *declassified* form of SPEC_GUESS — the paper
#: sanctions exactly this one-bit digest influencing enables and repairs.
SPEC_CTRL = "spec-ctrl"

#: Pre-commit stage results: register instances written by stages inside a
#: speculation's squash window; they may hold wrong-path intermediate data.
PRECOMMIT = "precommit"

#: Rollback tags: the occupancy bits of squashable stages — the commit
#: guard state that makes wrong-path instructions vanish.
ROLLBACK_TAG = "rollback-tag"

STATE_CLASSES = (SPEC_GUESS, SPEC_CTRL, PRECOMMIT, ROLLBACK_TAG)


@dataclass
class PipelineRegister:
    """A register with instances ``R.first`` .. ``R.last``.

    Instance ``R.k`` is written by stage ``k-1`` and is an input of stage
    ``k``.  A *visible* (programmer-level) register is one whose last
    instance is architectural state; in the paper's DLX, ``PC`` is visible
    while ``IR`` is not.
    """

    name: str
    width: int
    first: int
    last: int
    init: int = 0
    visible: bool = False

    def instances(self) -> range:
        return range(self.first, self.last + 1)

    def instance_name(self, k: int) -> str:
        if k not in self.instances():
            raise MachineSpecError(f"register {self.name!r} has no instance .{k}")
        return f"{self.name}.{k}"

    @property
    def write_stage(self) -> int:
        """The stage that produces the final (architectural) value."""
        return self.last - 1


@dataclass
class RegisterFile:
    """An architectural register file ``R`` written by stage ``w``.

    Following the paper's Figure 1, a write needs three signals: data
    (``f^w_R``), write enable (``f^w_Rwe``) and write address (``f^w_Rwa``).
    The enable/address pair may be *precomputed* in an earlier stage
    ``compute_stage`` (paper: "the signals f^k_Rwe and f^k_Rwa are
    precomputed"); the elaboration pipelines them forward as ``Rwe.j`` /
    ``Rwa.j``, which the forwarding synthesis then compares against.
    """

    name: str
    addr_width: int
    data_width: int
    write_stage: int
    init: dict[int, int] = field(default_factory=dict)
    visible: bool = True
    read_only: bool = False
    # Write signals (None until set via PreparedMachine.set_regfile_write):
    compute_stage: int | None = None
    we: E.Expr | None = None  # over compute_stage inputs
    wa: E.Expr | None = None  # over compute_stage inputs
    data: E.Expr | None = None  # over write_stage inputs

    def we_name(self, j: int) -> str:
        """Name of the piped precomputed write enable readable by stage j."""
        return f"{self.name}we.{j}"

    def wa_name(self, j: int) -> str:
        """Name of the piped precomputed write address readable by stage j."""
        return f"{self.name}wa.{j}"


@dataclass
class StageOutput:
    """One entry of a stage function: stage ``stage`` computes the new value
    of register instance ``reg.{stage+1}``.

    ``we`` is the write-enable function ``f^k_Rwe``; when None the register
    is written unconditionally (``f^k_Rwe == 1``).
    """

    stage: int
    reg: str
    value: E.Expr
    we: E.Expr | None = None


@dataclass
class ForwardingRegister:
    """Designer annotation: pipeline register ``reg`` holds, from stage
    ``stage`` on, the final value that will be written into the forwarded
    register file (paper Section 4.1: register ``Q``).

    ``stage`` is the stage whose output instance ``reg.{stage+1}`` first
    holds the value — i.e. ``f^{stage}_Qwe`` decides validity.
    """

    regfile: str
    reg: str
    stage: int


@dataclass
class LatencyCounter:
    """A cycle counter tracking how long the current instruction has been
    occupying ``stage`` — the building block for multi-cycle function
    units.  It resets when a new instruction arrives and increments while
    the stage is occupied; stall conditions read it by name."""

    name: str
    stage: int
    width: int


@dataclass
class StallCondition:
    """A designer-declared stall condition for ``stage`` (paper Section 3:
    "the presence of any other external stall condition in the stage, e.g.,
    caused by slow memory").  ``expr`` is a 1-bit expression over the
    stage's inputs and latency counters; while it holds, the stage stalls
    exactly like an external ``ext_k`` request — e.g. an iterative
    multiplier holding EX for its latency."""

    stage: int
    expr: E.Expr


@dataclass
class InvariantTemplate:
    """Designer-declared invariant shape over one pipeline register.

    ``prop`` maps a read of any instance of ``register`` to a 1-bit
    property expected to hold in every reachable state — e.g. "if the
    instruction word is a branch, its immediate is word-aligned".  The
    proof generator emits one ``tmpl.{name}.{instance}`` obligation per
    instance, and :mod:`repro.absint` mines the same shapes as
    candidates, so templates that really are invariant get proved by
    simultaneous induction and then strengthen each other's obligations
    (instance ``.k`` is typically inductive only relative to ``.k-1``).
    """

    name: str
    register: str
    prop: "Callable[[E.Expr], E.Expr]"
    notes: str = ""


@dataclass
class SpeculationSpec:
    """Designer annotation for speculative execution (paper, Section 5).

    * ``guess`` — the speculative input value, evaluated in the context of
      ``guess_stage`` (the stage that consumes the speculation);
    * ``actual`` — the true value, evaluated in the context of
      ``resolve_stage`` (where the truth is known at the latest);
    * on mismatch the tool raises ``rollback_{resolve_stage}``, squashing
      the instructions in stages 0..resolve_stage, and applies ``repairs``
      (register-instance name -> expression over resolve-stage context) so
      that "the correct value is used as input for subsequent calculations".

    Correctness never depends on the guess: a bad guess only costs cycles.
    """

    name: str
    guess_stage: int
    guess: E.Expr
    resolve_stage: int
    actual: E.Expr
    repairs: dict[str, E.Expr] = field(default_factory=dict)
    # Only check while this holds (over resolve-stage context); e.g. gate
    # interrupt detection on an enable bit.
    check_if: E.Expr | None = None

    def guess_name(self, j: int) -> str:
        """Name of the piped guess value readable by stage j."""
        return f"{self.name}.guess.{j}"


class PreparedMachine:
    """A complete prepared sequential machine description."""

    def __init__(self, name: str, n_stages: int) -> None:
        if n_stages < 1:
            raise MachineSpecError("a machine needs at least one stage")
        self.name = name
        self.n_stages = n_stages
        self.registers: dict[str, PipelineRegister] = {}
        self.regfiles: dict[str, RegisterFile] = {}
        self.outputs: dict[tuple[int, str], StageOutput] = {}
        self.forwarding: list[ForwardingRegister] = []
        self.speculations: list[SpeculationSpec] = []
        # Stages that may receive an external stall request ``ext_k``
        # (paper Section 3: "e.g., caused by slow memory").
        self.external_stalls: set[int] = set()
        # Designer-declared internal stall conditions (multi-cycle units)
        # and the latency counters they may read.
        self.stall_conditions: list[StallCondition] = []
        self.latency_counters: dict[str, LatencyCounter] = {}
        # Designer-declared invariant shapes (mined/proved by repro.absint,
        # emitted as tmpl.* obligations by the proof generator).
        self.invariant_templates: list[InvariantTemplate] = []
        # Designer-supplied information-flow labels on top of the derived
        # classes (register name -> state classes); see state_classes().
        self.state_labels: dict[str, set[str]] = {}
        # Designer-sanctioned scheduling oracles (stage, 1-bit decision):
        # redirect/squash decisions whose *outcome* the scheduling
        # obligations quantify over, so the width-parametricity analysis
        # may treat them as width-generic even when the compared datapath
        # values are not.  See repro.analysis.family.
        self.oracles: list[tuple[int, E.Expr]] = []

    # -- declarations ---------------------------------------------------------

    def _check_stage(self, stage: int) -> None:
        if not 0 <= stage < self.n_stages:
            raise MachineSpecError(
                f"stage {stage} out of range 0..{self.n_stages - 1}"
            )

    def add_register(
        self,
        name: str,
        width: int,
        first: int,
        last: int | None = None,
        init: int = 0,
        visible: bool = False,
    ) -> PipelineRegister:
        """Declare register ``name`` with instances ``.first`` .. ``.last``.

        Instance ``.k`` is written by stage ``k-1``.  ``last`` defaults to
        ``first`` (a single instance).
        """
        if name in self.registers or name in self.regfiles:
            raise MachineSpecError(f"register {name!r} already declared")
        last = first if last is None else last
        if not 1 <= first <= last <= self.n_stages:
            raise MachineSpecError(
                f"register {name!r}: instance range .{first}..{last} invalid"
                f" for {self.n_stages} stages"
            )
        reg = PipelineRegister(
            name=name, width=width, first=first, last=last, init=init, visible=visible
        )
        self.registers[name] = reg
        return reg

    def add_register_file(
        self,
        name: str,
        addr_width: int,
        data_width: int,
        write_stage: int,
        init: dict[int, int] | None = None,
        visible: bool = True,
        read_only: bool = False,
    ) -> RegisterFile:
        """Declare a register file (or, with ``read_only``, a ROM)."""
        if name in self.registers or name in self.regfiles:
            raise MachineSpecError(f"register file {name!r} already declared")
        if not read_only:
            self._check_stage(write_stage)
        regfile = RegisterFile(
            name=name,
            addr_width=addr_width,
            data_width=data_width,
            write_stage=write_stage,
            init=dict(init or {}),
            visible=visible,
            read_only=read_only,
        )
        self.regfiles[name] = regfile
        return regfile

    # -- expression helpers ------------------------------------------------------

    def read(self, name: str, instance: int) -> E.Expr:
        """Read register instance ``name.instance`` (an input of stage
        ``instance``)."""
        reg = self.registers.get(name)
        if reg is None:
            raise MachineSpecError(f"unknown register {name!r}")
        return E.reg_read(reg.instance_name(instance), reg.width)

    def read_last(self, name: str) -> E.Expr:
        """Read the last (architectural) instance of a register."""
        reg = self.registers.get(name)
        if reg is None:
            raise MachineSpecError(f"unknown register {name!r}")
        return E.reg_read(reg.instance_name(reg.last), reg.width)

    def read_file(self, name: str, addr: E.Expr) -> E.Expr:
        """Read register file ``name`` at ``addr`` (``addr`` is ``f^k_Rra``)."""
        regfile = self.regfiles.get(name)
        if regfile is None:
            raise MachineSpecError(f"unknown register file {name!r}")
        if addr.width != regfile.addr_width:
            raise MachineSpecError(
                f"register file {name!r}: address width {addr.width}"
                f" != alpha = {regfile.addr_width}"
            )
        return E.mem_read(name, addr, regfile.data_width)

    # -- stage functions -----------------------------------------------------------

    def set_output(
        self, stage: int, reg: str, value: E.Expr, we: E.Expr | None = None
    ) -> None:
        """Define ``f^stage_reg`` (and optionally ``f^stage_regwe``): stage
        ``stage`` computes the new value of instance ``reg.{stage+1}``."""
        self._check_stage(stage)
        spec = self.registers.get(reg)
        if spec is None:
            raise MachineSpecError(f"unknown register {reg!r}")
        if stage + 1 not in spec.instances():
            raise MachineSpecError(
                f"stage {stage} cannot write {reg!r}: no instance .{stage + 1}"
            )
        if (stage, reg) in self.outputs:
            raise MachineSpecError(f"f^{stage}_{reg} already defined")
        if value.width != spec.width:
            raise MachineSpecError(
                f"f^{stage}_{reg}: width {value.width} != {spec.width}"
            )
        if we is not None and we.width != 1:
            raise MachineSpecError(f"f^{stage}_{reg}we must be 1 bit")
        self.outputs[(stage, reg)] = StageOutput(stage=stage, reg=reg, value=value, we=we)

    def set_regfile_write(
        self,
        name: str,
        data: E.Expr,
        we: E.Expr,
        wa: E.Expr,
        compute_stage: int | None = None,
    ) -> None:
        """Define the write interface of a register file (paper Figure 1).

        ``data`` is ``f^w_R`` over the write stage's inputs; ``we``/``wa``
        are ``f^w_Rwe``/``f^w_Rwa`` evaluated in ``compute_stage`` (default:
        the write stage itself) and piped forward by the elaboration.
        """
        regfile = self.regfiles.get(name)
        if regfile is None:
            raise MachineSpecError(f"unknown register file {name!r}")
        if regfile.read_only:
            raise MachineSpecError(f"register file {name!r} is read-only")
        if regfile.we is not None:
            raise MachineSpecError(f"write interface of {name!r} already defined")
        compute_stage = (
            regfile.write_stage if compute_stage is None else compute_stage
        )
        self._check_stage(compute_stage)
        if compute_stage > regfile.write_stage:
            raise MachineSpecError(
                f"register file {name!r}: compute stage {compute_stage} is after"
                f" write stage {regfile.write_stage}"
            )
        if data.width != regfile.data_width:
            raise MachineSpecError(
                f"register file {name!r}: data width {data.width}"
                f" != {regfile.data_width}"
            )
        if we.width != 1:
            raise MachineSpecError(f"register file {name!r}: we must be 1 bit")
        if wa.width != regfile.addr_width:
            raise MachineSpecError(
                f"register file {name!r}: wa width {wa.width}"
                f" != alpha = {regfile.addr_width}"
            )
        regfile.compute_stage = compute_stage
        regfile.we = we
        regfile.wa = wa
        regfile.data = data

    # -- annotations ------------------------------------------------------------------

    def add_forwarding_register(self, regfile: str, reg: str, stage: int) -> None:
        """Name ``reg`` as the forwarding register used when the producing
        instruction is in stage ``stage`` (the paper's register ``Q``).

        The hit takes ``f^stage_reg`` if stage ``stage`` writes ``reg``
        this cycle, else the instance ``reg.stage`` (the value produced by
        an earlier stage) — so the instance ``reg.stage`` must exist, but
        an ``f^stage`` entry is optional (a pure pass-through stage)."""
        if regfile not in self.regfiles and regfile not in self.registers:
            raise MachineSpecError(f"unknown forwarded state {regfile!r}")
        spec = self.registers.get(reg)
        if spec is None:
            raise MachineSpecError(f"unknown register {reg!r}")
        self._check_stage(stage)
        if stage not in spec.instances():
            raise MachineSpecError(
                f"forwarding register {reg!r} has no instance .{stage}"
                f" readable by stage {stage}"
            )
        self.forwarding.append(ForwardingRegister(regfile=regfile, reg=reg, stage=stage))

    def add_speculation(self, spec: SpeculationSpec) -> None:
        self._check_stage(spec.guess_stage)
        self._check_stage(spec.resolve_stage)
        if spec.guess_stage > spec.resolve_stage:
            raise MachineSpecError(
                f"speculation {spec.name!r}: guess stage after resolve stage"
            )
        if spec.guess.width != spec.actual.width:
            raise MachineSpecError(
                f"speculation {spec.name!r}: guess/actual width mismatch"
            )
        if any(s.name == spec.name for s in self.speculations):
            raise MachineSpecError(f"speculation {spec.name!r} already declared")
        for target in spec.repairs:
            if not any(
                target == reg.instance_name(k)
                for reg in self.registers.values()
                for k in reg.instances()
            ):
                raise MachineSpecError(
                    f"speculation {spec.name!r}: repair target {target!r}"
                    " is not a register instance"
                )
        self.speculations.append(spec)

    def add_invariant_template(
        self,
        name: str,
        register: str,
        prop: "Callable[[E.Expr], E.Expr]",
        notes: str = "",
    ) -> InvariantTemplate:
        """Declare an invariant shape expected to hold of every instance of
        ``register`` in every reachable state (see :class:`InvariantTemplate`).
        """
        spec = self.registers.get(register)
        if spec is None:
            raise MachineSpecError(f"unknown register {register!r}")
        if any(t.name == name for t in self.invariant_templates):
            raise MachineSpecError(f"invariant template {name!r} already declared")
        probe = prop(E.reg_read(spec.instance_name(spec.first), spec.width))
        if probe.width != 1:
            raise MachineSpecError(
                f"invariant template {name!r} must produce a 1-bit property"
            )
        template = InvariantTemplate(
            name=name, register=register, prop=prop, notes=notes
        )
        self.invariant_templates.append(template)
        return template

    def label_state(self, name: str, state_class: str) -> None:
        """Attach an information-flow state class to a register name.

        ``name`` may be a register instance of this machine or a register
        the elaboration creates later (piped guesses, full bits); the
        taint analysis intersects labels with the registers that actually
        exist in the transformed module.
        """
        if state_class not in STATE_CLASSES:
            raise MachineSpecError(
                f"unknown state class {state_class!r}; use one of {STATE_CLASSES}"
            )
        self.state_labels.setdefault(name, set()).add(state_class)

    def state_classes(self) -> dict[str, set[str]]:
        """Information-flow labels of the machine's state, derived from
        the speculation annotations plus any :meth:`label_state` entries.

        Per speculation with guess stage ``g`` and resolve stage ``r``:

        * the piped guesses ``{name}.guess.{g+1..r}`` are ``SPEC_GUESS``;
        * the full bits ``fullb.{1..r}`` of the squashable stages are
          ``ROLLBACK_TAG``;
        * register instances ``R.k`` with ``k <= r`` are ``PRECOMMIT`` —
          they may hold results of wrong-path instructions that the
          squash has not yet caught up with.

        Machines without speculation have no derived labels: every value
        in flight is committed work.
        """
        labels: dict[str, set[str]] = {}

        def tag(name: str, state_class: str) -> None:
            labels.setdefault(name, set()).add(state_class)

        from ..core.stall_engine import full_bit_name

        for spec in self.speculations:
            for j in range(spec.guess_stage + 1, spec.resolve_stage + 1):
                tag(spec.guess_name(j), SPEC_GUESS)
            for s in range(1, spec.resolve_stage + 1):
                tag(full_bit_name(s), ROLLBACK_TAG)
            for reg in self.registers.values():
                for k in reg.instances():
                    if k <= spec.resolve_stage:
                        tag(reg.instance_name(k), PRECOMMIT)
        for name, classes in self.state_labels.items():
            for state_class in classes:
                tag(name, state_class)
        return labels

    def allow_external_stall(self, stage: int) -> None:
        """Declare that stage ``stage`` has an external stall input ``ext_k``."""
        self._check_stage(stage)
        self.external_stalls.add(stage)

    def declassify(self, stage: int, expr: E.Expr) -> None:
        """Declare a 1-bit scheduling oracle evaluated in ``stage``.

        ``expr`` must be a redirect/squash decision (branch taken,
        prediction mismatch, ...) whose two outcomes the scheduling
        obligations both cover: the stall engine is correct whichever way
        the decision goes.  The width-parametricity analysis may then
        treat the decision bit as width-generic even though the compared
        datapath values are not; :func:`repro.analysis.family.crosscheck_family`
        audits the declaration empirically.
        """
        self._check_stage(stage)
        if expr.width != 1:
            raise MachineSpecError("declassified oracles must be 1-bit decisions")
        self.oracles.append((stage, expr))

    def add_latency_counter(self, name: str, stage: int, width: int) -> E.Expr:
        """Declare a cycle counter for multi-cycle operations in ``stage``
        and return an expression reading it.

        The counter is 0 in the cycle an instruction enters the stage and
        increments each further cycle the instruction occupies it.
        """
        self._check_stage(stage)
        if name in self.latency_counters or name in self.registers:
            raise MachineSpecError(f"latency counter {name!r} already declared")
        if width <= 0:
            raise MachineSpecError("latency counter width must be positive")
        self.latency_counters[name] = LatencyCounter(name=name, stage=stage, width=width)
        return E.reg_read(name, width)

    def add_stall_condition(self, stage: int, expr: E.Expr) -> None:
        """Declare that ``stage`` must stall while ``expr`` holds (a
        multi-cycle function unit, a busy memory port, ...).  The condition
        enters the stall chain exactly like an external ``ext_k`` request.
        """
        self._check_stage(stage)
        if expr.width != 1:
            raise MachineSpecError("stall conditions must be 1 bit wide")
        self.stall_conditions.append(StallCondition(stage=stage, expr=expr))

    def stall_conditions_for(self, stage: int) -> list[E.Expr]:
        return [c.expr for c in self.stall_conditions if c.stage == stage]

    # -- derived views --------------------------------------------------------------

    def output_for(self, stage: int, reg: str) -> StageOutput | None:
        return self.outputs.get((stage, reg))

    def writes_of_stage(self, stage: int) -> list[StageOutput]:
        return [out for (s, _r), out in self.outputs.items() if s == stage]

    def instance_names(self) -> list[str]:
        return [
            reg.instance_name(k)
            for reg in self.registers.values()
            for k in reg.instances()
        ]

    def forwarding_for(self, regfile: str) -> list[ForwardingRegister]:
        return sorted(
            (f for f in self.forwarding if f.regfile == regfile),
            key=lambda f: f.stage,
        )

    def visible_registers(self) -> list[PipelineRegister]:
        return [r for r in self.registers.values() if r.visible]

    def visible_regfiles(self) -> list[RegisterFile]:
        return [r for r in self.regfiles.values() if r.visible and not r.read_only]

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural consistency of the description.

        * every register instance is driven (computed by its writing stage
          or passed through from the previous instance);
        * stage functions only read legal inputs: the stage's own input
          instances, architectural (last) instances, or register files;
        * register files with writers have a complete write interface.
        """
        for reg in self.registers.values():
            for k in reg.instances():
                writer = k - 1
                has_f = (writer, reg.name) in self.outputs
                has_prev = k - 1 in reg.instances()
                if not has_f and not has_prev:
                    raise MachineSpecError(
                        f"instance {reg.instance_name(k)} is never driven:"
                        f" stage {writer} has no f^{writer}_{reg.name} and"
                        f" there is no instance .{k - 1} to pass through"
                    )
                out = self.outputs.get((writer, reg.name))
                if out is not None and out.we is not None and not has_prev:
                    # ce = f_Rwe AND ue; fine — conditional write of a
                    # head instance is allowed (holds its old value).
                    pass
        for regfile in self.regfiles.values():
            if not regfile.read_only and regfile.we is None:
                raise MachineSpecError(
                    f"register file {regfile.name!r} has no write interface"
                )
        for (stage, reg_name), out in self.outputs.items():
            roots = [out.value] + ([out.we] if out.we is not None else [])
            self._check_stage_reads(stage, roots, f"f^{stage}_{reg_name}")
        for condition in self.stall_conditions:
            self._check_stage_reads(
                condition.stage,
                [condition.expr],
                f"stall condition of stage {condition.stage}",
            )
        for regfile in self.regfiles.values():
            if regfile.we is None:
                continue
            self._check_stage_reads(
                regfile.compute_stage,
                [regfile.we, regfile.wa],
                f"{regfile.name} write enable/address",
            )
            self._check_stage_reads(
                regfile.write_stage, [regfile.data], f"f^{regfile.write_stage}_{regfile.name}"
            )

    def _check_stage_reads(self, stage: int, roots: list[E.Expr], what: str) -> None:
        legal: set[str] = set()
        for reg in self.registers.values():
            if stage in reg.instances():
                legal.add(reg.instance_name(stage))
            # architectural instance readable anywhere (subject to forwarding)
            legal.add(reg.instance_name(reg.last))
        legal.update(self.latency_counters)
        for name in E.reg_reads(roots):
            if name in legal:
                continue
            # piped write-enable/-address and guess registers are created by
            # elaboration; allow references of the form "<rf>we.<stage>" etc.
            raise MachineSpecError(
                f"{what}: illegal register read {name!r} from stage {stage}"
            )
