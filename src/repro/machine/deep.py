"""A parametric deep pipeline for scaling experiments.

The paper (Section 4.2) notes that the generated forwarding "hardware gets
slow with larger pipelines" and recommends a find-first-one circuit with a
balanced multiplexer tree or a tri-state operand bus instead.  Experiment
E4 quantifies that remark by synthesizing forwarding for pipelines of
configurable depth and measuring the unit-gate cost/delay of each style.

The machine generalises the 4-stage toy: stage 0 fetches, stage 1 reads
two operands of a register file written by the last stage, stages
2..n-2 are execute stages, each of which may produce the result (a
one-hot stage select in the instruction decides where the value becomes
available — so every forwarding path and every interlock distance is
exercised), and stage n-1 writes back.
"""

from __future__ import annotations

from ..hdl import expr as E

from .prepared import PreparedMachine

WORD = 16


def encode_deep(
    n_stages: int, produce_stage: int, dst: int, src1: int, src2: int, write: bool = True
) -> int:
    """Encode one instruction of the deep machine.

    ``produce_stage`` (2..n-2) is the execute stage in which the result
    (``RF[src1] + RF[src2] + stage``) becomes available; later stages pass
    it along.  Layout: ``we(1) | stage(4) | dst(3) | src1(3) | src2(3)``.
    """
    if not 2 <= produce_stage <= n_stages - 2:
        raise ValueError(f"produce stage {produce_stage} out of range")
    for field, width in ((dst, 3), (src1, 3), (src2, 3)):
        if not 0 <= field < (1 << width):
            raise ValueError("register fields are 3 bits")
    return (
        (int(write) << 13) | (produce_stage << 9) | (dst << 6) | (src1 << 3) | src2
    )


def build_deep_machine(
    n_stages: int, program: list[int] | None = None
) -> PreparedMachine:
    """Build a prepared deep machine with ``n_stages >= 4`` stages."""
    if n_stages < 4:
        raise ValueError("the deep machine needs at least 4 stages")
    program = program or []
    machine = PreparedMachine(f"deep{n_stages}", n_stages)
    last = n_stages - 1
    pc_width = 6
    imem_size = 1 << pc_width
    if len(program) > imem_size:
        raise ValueError("program too long")

    machine.add_register("PC", pc_width, first=1, visible=True)
    machine.add_register("IR", 14, first=1, last=last)
    machine.add_register("A", WORD, first=2, last=last - 1)
    machine.add_register("B", WORD, first=2, last=last - 1)
    machine.add_register("C", WORD, first=2, last=last)

    machine.add_register_file("RF", addr_width=3, data_width=WORD, write_stage=last)
    machine.add_register_file(
        "IMem",
        addr_width=pc_width,
        data_width=14,
        write_stage=0,
        init={i: (program[i] if i < len(program) else 0) for i in range(imem_size)},
        read_only=True,
    )

    # stage 0: fetch
    pc = machine.read_last("PC")
    machine.set_output(0, "IR", machine.read_file("IMem", pc))
    machine.set_output(0, "PC", E.add(pc, E.const(pc_width, 1)))

    # stage 1: operand read (+ early produce of the base value into C)
    ir = machine.read("IR", 1)
    src1 = E.bits(ir, 3, 5)
    src2 = E.bits(ir, 0, 2)
    machine.set_output(1, "A", machine.read_file("RF", src1))
    machine.set_output(1, "B", machine.read_file("RF", src2))
    machine.set_output(1, "C", E.const(WORD, 0), we=E.const(1, 0))

    # stages 2..n-2: execute; the selected stage produces the result
    # (A and B travel with the instruction, so the result is deterministic
    # regardless of where it is produced)
    for stage in range(2, n_stages - 1):
        ir_k = machine.read("IR", stage)
        produce = E.eq(E.bits(ir_k, 9, 12), E.const(4, stage))
        value = E.add(
            E.add(machine.read("A", stage), machine.read("B", stage)),
            E.const(WORD, stage),
        )
        machine.set_output(stage, "C", value, we=produce)
        machine.add_forwarding_register("RF", "C", stage)

    # last stage: write back (we/wa precomputed in the read stage)
    machine.set_regfile_write(
        "RF",
        data=machine.read("C", last),
        we=E.bit(ir, 13),
        wa=E.bits(ir, 6, 8),
        compute_stage=1,
    )

    machine.validate()
    return machine
