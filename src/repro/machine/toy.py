"""A minimal 4-stage worked example machine ("toy").

A tiny accumulator-style RISC used throughout the tests, docs and the
quickstart example.  It is deliberately small enough to model-check
exhaustively, yet exercises every feature of the transformation:

* a register file read three stages before it is written (forwarding),
* a forwarding register (``C``) produced in *two* different stages
  (immediate in RD, ALU result in EX) — exercising the valid-bit chain,
* a load whose result only exists at write-back (interlock/data hazard),
* precomputed write enable/address piped from the decode stage.

Pipeline stages::

    0 IF   fetch:      IR.1 := IMem[PC];  PC.1 := PC + 1
    1 RD   read:       A.2 := RF[src1];  B.2 := RF[src2];
                       C.2 := imm        (write-enabled for LI)
                       RFwe/RFwa precomputed here
    2 EX   execute:    C.3 := A.2 + B.2  (write-enabled for ADD)
                       A.3 := A.2        (address for LD)
    3 WB   write-back: RF[RFwa] := is_ld ? DM[A.3] : C.3

Instruction encoding (8 bits)::

    op(2) | dst(2) | src1(2) | src2(2)
    op: 0 = ADD dst, src1, src2
        1 = LI  dst, imm4          (imm4 = src1:src2)
        2 = NOP
        3 = LD  dst, [src1]        (DM address = RF[src1] mod 16)
"""

from __future__ import annotations

from ..hdl import expr as E
from .prepared import PreparedMachine

WORD = 8
PC_WIDTH = 5
IMEM_SIZE = 1 << PC_WIDTH

OP_ADD = 0
OP_LI = 1
OP_NOP = 2
OP_LD = 3


def encode(op: int, dst: int = 0, src1: int = 0, src2: int = 0) -> int:
    """Encode one toy instruction."""
    for field, width in ((op, 2), (dst, 2), (src1, 2), (src2, 2)):
        if not 0 <= field < (1 << width):
            raise ValueError(f"field value {field} does not fit in {width} bits")
    return (op << 6) | (dst << 4) | (src1 << 2) | src2


def add(dst: int, src1: int, src2: int) -> int:
    return encode(OP_ADD, dst, src1, src2)


def li(dst: int, imm: int) -> int:
    if not 0 <= imm < 16:
        raise ValueError("toy immediates are 4 bits")
    return encode(OP_LI, dst, imm >> 2, imm & 3)


def nop() -> int:
    return encode(OP_NOP)


def ld(dst: int, src1: int) -> int:
    return encode(OP_LD, dst, src1)


def build_toy_machine(
    program: list[int],
    dmem: dict[int, int] | None = None,
    word: int = WORD,
) -> PreparedMachine:
    """Build the prepared sequential toy machine for a program.

    ``word`` is the datapath width (register file, data memory and the
    A/B/C pipeline registers).  The instruction encoding — and with it IR,
    the opcode pipeline and the program counter — is fixed at 8 bits, so
    the members of the ``word``-indexed family differ *only* in datapath
    width: the control cone is shared verbatim, which is what the
    width-parametricity analysis (:mod:`repro.analysis`) certifies.
    """
    if len(program) > IMEM_SIZE:
        raise ValueError(f"program too long ({len(program)} > {IMEM_SIZE})")
    if word < 4:
        raise ValueError("toy datapath width must cover the 4-bit immediates")
    machine = PreparedMachine("toy", 4)

    machine.add_register("PC", PC_WIDTH, first=1, visible=True)
    machine.add_register("IR", WORD, first=1, init=nop())
    machine.add_register("OP", 2, first=2, last=3, init=OP_NOP)
    machine.add_register("A", word, first=2, last=3)
    machine.add_register("B", word, first=2)
    machine.add_register("C", word, first=2, last=3)

    rf = machine.add_register_file("RF", addr_width=2, data_width=word, write_stage=3)
    machine.add_register_file(
        "IMem",
        addr_width=PC_WIDTH,
        data_width=WORD,
        write_stage=0,
        init={
            i: (program[i] if i < len(program) else nop())
            for i in range(IMEM_SIZE)
        },
        read_only=True,
    )
    machine.add_register_file(
        "DM",
        addr_width=4,
        data_width=word,
        write_stage=0,
        init=dict(dmem or {}),
        read_only=True,
    )

    # ---- stage 0: fetch -------------------------------------------------------
    pc = machine.read_last("PC")
    machine.set_output(0, "IR", machine.read_file("IMem", pc))
    machine.set_output(0, "PC", E.add(pc, E.const(PC_WIDTH, 1)))

    # ---- stage 1: operand read -------------------------------------------------
    ir = machine.read("IR", 1)
    op = E.bits(ir, 6, 7)
    dst = E.bits(ir, 4, 5)
    src1 = E.bits(ir, 2, 3)
    src2 = E.bits(ir, 0, 1)
    imm = E.zext(E.bits(ir, 0, 3), word)
    is_li = E.eq(op, E.const(2, OP_LI))
    writes_rf = E.ne(op, E.const(2, OP_NOP))

    machine.set_output(1, "OP", op)
    machine.set_output(1, "A", machine.read_file("RF", src1))
    machine.set_output(1, "B", machine.read_file("RF", src2))
    machine.set_output(1, "C", imm, we=is_li)

    # ---- stage 2: execute --------------------------------------------------------
    op2 = machine.read("OP", 2)
    a2 = machine.read("A", 2)
    b2 = machine.read("B", 2)
    is_add = E.eq(op2, E.const(2, OP_ADD))
    machine.set_output(2, "C", E.add(a2, b2), we=is_add)

    # ---- stage 3: write-back ---------------------------------------------------------
    op3 = machine.read("OP", 3)
    a3 = machine.read("A", 3)
    c3 = machine.read("C", 3)
    is_ld = E.eq(op3, E.const(2, OP_LD))
    load_value = machine.read_file("DM", E.bits(a3, 0, 3))
    machine.set_regfile_write(
        "RF",
        data=E.mux(is_ld, load_value, c3),
        we=writes_rf,
        wa=dst,
        compute_stage=1,
    )

    # C holds the final RF value from EX on (and from RD on, for LI):
    machine.add_forwarding_register("RF", "C", stage=2)

    machine.validate()
    return machine


def reference_execution(
    program: list[int],
    dmem: dict[int, int] | None = None,
    max_steps: int = 10_000,
    word: int = WORD,
) -> tuple[list[int], list[tuple[int, int]]]:
    """ISA-level reference: returns (final RF contents, write sequence).

    The write sequence lists ``(addr, value)`` per retiring instruction
    that writes RF — the specification the pipelined commits must match.
    Execution stops when PC runs off the end of the program (instructions
    beyond it read as NOP and write nothing).
    """
    dmem = dict(dmem or {})
    rf = [0, 0, 0, 0]
    writes: list[tuple[int, int]] = []
    pc = 0
    steps = 0
    while pc < len(program) and steps < max_steps:
        insn = program[pc]
        op = (insn >> 6) & 3
        dst = (insn >> 4) & 3
        src1 = (insn >> 2) & 3
        src2 = insn & 3
        pc = (pc + 1) % IMEM_SIZE
        steps += 1
        if op == OP_ADD:
            rf[dst] = (rf[src1] + rf[src2]) % (1 << word)
            writes.append((dst, rf[dst]))
        elif op == OP_LI:
            rf[dst] = (src1 << 2) | src2
            writes.append((dst, rf[dst]))
        elif op == OP_LD:
            rf[dst] = dmem.get(rf[src1] % 16, 0)
            writes.append((dst, rf[dst]))
    return rf, writes
