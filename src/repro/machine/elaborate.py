"""Shared elaboration: prepared machine description -> netlist datapath.

Both the sequential machine (:mod:`repro.machine.sequential`) and the
pipelined machine (:mod:`repro.core.transform`) instantiate the same
datapath; they differ only in

* where the update-enable signals ``ue_k`` come from (round-robin counter
  vs stall engine), and
* the input-generation functions ``g^k`` (identity vs forwarding networks),
  realised here as a per-stage expression substitution.

The register clocking rules follow the paper's Section 2 exactly:

* instance ``R.k`` written by stage ``k-1`` with an instance ``R.(k-1)``
  in the previous stage: next value is ``f^{k-1}_R`` if ``f^{k-1}_Rwe``
  else the previous instance's value; clock enable is ``ue_{k-1}``;
* instance without a predecessor: next value is always ``f^{k-1}_R``;
  clock enable is ``f^{k-1}_Rwe AND ue_{k-1}``;
* register files are written with enable ``Rwe AND ue_w`` at address
  ``Rwa`` (Figure 1), where ``Rwe``/``Rwa`` are the precomputed versions
  piped forward from their compute stage.
"""

from __future__ import annotations

from typing import Callable

from ..hdl import expr as E
from ..hdl.netlist import Module

from .prepared import MachineSpecError, PreparedMachine

# A per-stage rewriter implementing the input-generation function g^k: it
# receives the stage index and an expression over the prepared machine's
# direct reads, and returns the expression with operand reads replaced.
StageRewriter = Callable[[int, E.Expr], E.Expr]


def identity_rewriter(stage: int, expression: E.Expr) -> E.Expr:
    """The prepared sequential machine's g^k: pass register values through
    unchanged (paper Section 2: "the function just passes the appropriate
    register values and does not model any gates")."""
    return expression


def elaborate_datapath(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    rewrite: StageRewriter = identity_rewriter,
) -> None:
    """Instantiate registers, register files, precompute pipes and commit
    probes of ``machine`` into ``module``, clocked by the ``ue`` signals.
    """
    if len(ue) != machine.n_stages:
        raise MachineSpecError(
            f"need {machine.n_stages} update enables, got {len(ue)}"
        )

    declare_external_inputs(module, machine)
    _declare_state(module, machine)
    _build_precompute_pipes(module, machine, ue, rewrite)
    _build_register_updates(module, machine, ue, rewrite)
    _build_regfile_writes(module, machine, ue, rewrite)
    _add_commit_probes(module, machine, ue, rewrite)


def machine_expression_roots(machine: PreparedMachine) -> list[E.Expr]:
    """Every designer-supplied expression of the machine description."""
    roots: list[E.Expr] = []
    for out in machine.outputs.values():
        roots.append(out.value)
        if out.we is not None:
            roots.append(out.we)
    for regfile in machine.regfiles.values():
        if regfile.we is not None:
            roots.extend((regfile.we, regfile.wa, regfile.data))
    for spec in machine.speculations:
        roots.extend((spec.guess, spec.actual))
        if spec.check_if is not None:
            roots.append(spec.check_if)
        roots.extend(spec.repairs.values())
    return roots


def declare_external_inputs(module: Module, machine: PreparedMachine) -> None:
    """Declare every external input port referenced anywhere in the machine
    description (e.g. an interrupt line)."""
    for node in E.walk(machine_expression_roots(machine)):
        if isinstance(node, E.Input):
            module.add_input(node.name, node.width)


def drive_latency_counters(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    occupied: list[E.Expr],
) -> None:
    """Instantiate the machine's latency counters.

    A counter for ``stage`` is 0 when a new instruction arrives (``ue`` of
    the stage above fired, or — for stage 0 — the stage's own ``ue``, since
    a fresh fetch follows immediately) and increments each cycle the stage
    stays occupied; otherwise it holds.
    """
    for counter in machine.latency_counters.values():
        stage = counter.stage
        arrive = ue[stage - 1] if stage > 0 else ue[0]
        count = module.add_register(counter.name, counter.width, init=0)
        module.drive_register(
            counter.name,
            E.mux(
                arrive,
                E.const(counter.width, 0),
                E.mux(
                    occupied[stage],
                    E.add(count, E.const(counter.width, 1)),
                    count,
                ),
            ),
        )


def _declare_state(module: Module, machine: PreparedMachine) -> None:
    for reg in machine.registers.values():
        for k in reg.instances():
            module.add_register(reg.instance_name(k), reg.width, init=reg.init)
    for regfile in machine.regfiles.values():
        module.add_memory(
            regfile.name, regfile.addr_width, regfile.data_width, init=regfile.init
        )


def _build_precompute_pipes(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    rewrite: StageRewriter,
) -> None:
    """Pipe the precomputed ``Rwe``/``Rwa`` signals from their compute stage
    to the write stage (paper: ``Rwe.j`` and ``Rwa.j``)."""
    for regfile in machine.regfiles.values():
        if regfile.we is None:
            continue
        p = regfile.compute_stage
        assert p is not None
        for j in range(p + 1, regfile.write_stage + 1):
            module.add_register(regfile.we_name(j), 1)
            module.add_register(regfile.wa_name(j), regfile.addr_width)
        for j in range(p + 1, regfile.write_stage + 1):
            module.drive_register(
                regfile.we_name(j), precomputed_we(machine, regfile.name, j - 1, rewrite),
                enable=ue[j - 1],
            )
            module.drive_register(
                regfile.wa_name(j), precomputed_wa(machine, regfile.name, j - 1, rewrite),
                enable=ue[j - 1],
            )


def precomputed_we(
    machine: PreparedMachine,
    regfile_name: str,
    stage: int,
    rewrite: StageRewriter = identity_rewriter,
) -> E.Expr:
    """``Rwe.{stage}`` as seen *by* stage ``stage``: the combinational
    ``f^p_Rwe`` in the compute stage itself, the piped register after."""
    regfile = machine.regfiles[regfile_name]
    if regfile.we is None:
        raise MachineSpecError(f"register file {regfile_name!r} has no writes")
    p = regfile.compute_stage
    assert p is not None
    if stage < p or stage > regfile.write_stage:
        raise MachineSpecError(
            f"{regfile_name}we.{stage}: stage outside {p}..{regfile.write_stage}"
        )
    if stage == p:
        return rewrite(p, regfile.we)
    return E.reg_read(regfile.we_name(stage), 1)


def precomputed_wa(
    machine: PreparedMachine,
    regfile_name: str,
    stage: int,
    rewrite: StageRewriter = identity_rewriter,
) -> E.Expr:
    """``Rwa.{stage}`` as seen by stage ``stage``; see :func:`precomputed_we`."""
    regfile = machine.regfiles[regfile_name]
    if regfile.wa is None:
        raise MachineSpecError(f"register file {regfile_name!r} has no writes")
    p = regfile.compute_stage
    assert p is not None
    if stage < p or stage > regfile.write_stage:
        raise MachineSpecError(
            f"{regfile_name}wa.{stage}: stage outside {p}..{regfile.write_stage}"
        )
    if stage == p:
        return rewrite(p, regfile.wa)
    return E.reg_read(regfile.wa_name(stage), regfile.addr_width)


def _build_register_updates(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    rewrite: StageRewriter,
) -> None:
    for reg in machine.registers.values():
        for k in reg.instances():
            writer = k - 1
            out = machine.output_for(writer, reg.name)
            prev = (
                E.reg_read(reg.instance_name(k - 1), reg.width)
                if k - 1 in reg.instances()
                else None
            )
            if out is not None:
                value = rewrite(writer, out.value)
                we = rewrite(writer, out.we) if out.we is not None else None
                if prev is not None:
                    next_value = value if we is None else E.mux(we, value, prev)
                    enable = ue[writer]
                else:
                    next_value = value
                    enable = ue[writer] if we is None else E.band(we, ue[writer])
            else:
                assert prev is not None  # validated
                next_value = prev
                enable = ue[writer]
            module.drive_register(reg.instance_name(k), next_value, enable=enable)


def _build_regfile_writes(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    rewrite: StageRewriter,
) -> None:
    for regfile in machine.regfiles.values():
        if regfile.we is None:
            continue
        w = regfile.write_stage
        enable = E.band(precomputed_we(machine, regfile.name, w, rewrite), ue[w])
        addr = precomputed_wa(machine, regfile.name, w, rewrite)
        data = rewrite(w, regfile.data)
        module.memories[regfile.name].add_write_port(enable, addr, data)


def _add_commit_probes(
    module: Module,
    machine: PreparedMachine,
    ue: list[E.Expr],
    rewrite: StageRewriter,
) -> None:
    """Probes observing architectural effects as they commit; the data
    consistency checker compares these against the specification machine."""
    for stage, enable in enumerate(ue):
        module.add_probe(f"ue.{stage}", enable)
    for regfile in machine.regfiles.values():
        if regfile.we is None or not regfile.visible:
            continue
        w = regfile.write_stage
        module.add_probe(
            f"commit.{regfile.name}.we",
            E.band(precomputed_we(machine, regfile.name, w, rewrite), ue[w]),
        )
        module.add_probe(
            f"commit.{regfile.name}.wa", precomputed_wa(machine, regfile.name, w, rewrite)
        )
        module.add_probe(f"commit.{regfile.name}.data", rewrite(w, regfile.data))
    for reg in machine.visible_registers():
        writer = reg.last - 1
        out = machine.output_for(writer, reg.name)
        if out is None:
            # pass-through into the architectural instance
            value: E.Expr = E.reg_read(reg.instance_name(reg.last - 1), reg.width)
            we: E.Expr = E.const(1, 1)
        else:
            value = rewrite(writer, out.value)
            we = (
                rewrite(writer, out.we) if out.we is not None else E.const(1, 1)
            )
            if reg.last - 1 in reg.instances():
                value = E.mux(
                    we, value, E.reg_read(reg.instance_name(reg.last - 1), reg.width)
                )
                we = E.const(1, 1)
        module.add_probe(f"commit.{reg.name}.we", E.band(we, ue[writer]))
        module.add_probe(f"commit.{reg.name}.data", value)
