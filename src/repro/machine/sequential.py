"""Elaboration of the prepared machine into a *sequential* implementation.

Paper, Section 2: "By enabling the update enable signals ue_k round robin
(table 1), one gets a sequential machine."  A stage counter walks through
the stages; exactly one stage is enabled each cycle, so exactly one
instruction is in flight.  This machine is the correctness reference for
the transformation (its behaviour is assumed/verified to match the ISA).

External stall conditions (``ext_k`` inputs, e.g. slow memory) hold the
counter, so the sequential machine honours the same memory-interface
contract as the pipelined one.

Speculation annotations collapse to their sequential meaning: when the
single in-flight instruction reaches the resolve stage and the actual
value differs from the guess, the instruction is aborted (no further
stage executes its writes), the repairs are applied, and fetch restarts —
e.g. an interrupt annotation suppresses the interrupted instruction and
redirects to the handler, exactly as the ISA reference does.
"""

from __future__ import annotations

from ..hdl import expr as E
from ..hdl.bitvec import bit_length_for
from ..hdl.netlist import Module
from .elaborate import drive_latency_counters, elaborate_datapath, identity_rewriter
from .prepared import PreparedMachine

STAGE_COUNTER = "seq.stage"


def build_sequential(machine: PreparedMachine) -> Module:
    """Build the sequential netlist with round-robin update enables.

    Probes: ``ue.{k}`` per stage, ``seq.stage`` (the active stage),
    ``seq.instr_done`` (the last stage fired — one instruction retired),
    and the commit probes shared with the pipelined elaboration.
    """
    machine.validate()
    module = Module(f"{machine.name}.sequential")
    n = machine.n_stages

    counter_width = bit_length_for(max(n, 2))
    counter = module.add_register(STAGE_COUNTER, counter_width, init=0)

    ext = {
        stage: module.add_input(f"ext.{stage}", 1)
        for stage in sorted(machine.external_stalls)
    }

    at_stage = [E.eq(counter, E.const(counter_width, k)) for k in range(n)]
    hold_terms = [
        E.band(at_stage[k], ext[k]) for k in sorted(machine.external_stalls)
    ]
    # designer-declared stall conditions (multi-cycle units) hold the
    # counter exactly like external stall requests
    hold_terms.extend(
        E.band(at_stage[condition.stage], condition.expr)
        for condition in machine.stall_conditions
    )
    stalled = E.any_of(hold_terms)
    advance = E.bnot(stalled)

    # ---- sequential speculation resolution ---------------------------------
    mispredicts: list[E.Expr] = []
    for spec in machine.speculations:
        for j in range(spec.guess_stage + 1, spec.resolve_stage + 1):
            module.add_register(spec.guess_name(j), spec.guess.width)
        guessed: E.Expr = (
            spec.guess
            if spec.resolve_stage == spec.guess_stage
            else E.reg_read(spec.guess_name(spec.resolve_stage), spec.guess.width)
        )
        mispredict = E.band(
            E.band(at_stage[spec.resolve_stage], advance),
            E.ne(guessed, spec.actual),
        )
        if spec.check_if is not None:
            mispredict = E.band(mispredict, spec.check_if)
        mispredicts.append(mispredict)
        module.add_probe(f"spec.{spec.name}.mispredict", mispredict)
    any_mispredict = E.any_of(mispredicts)
    no_mispredict = E.bnot(any_mispredict)

    wrap = E.eq(counter, E.const(counter_width, n - 1))
    next_counter = E.mux(
        wrap, E.const(counter_width, 0), E.add(counter, E.const(counter_width, 1))
    )
    module.drive_register(
        STAGE_COUNTER,
        E.mux(any_mispredict, E.const(counter_width, 0), next_counter),
        enable=E.bor(advance, any_mispredict),
    )

    ue = [E.band(E.band(at_stage[k], advance), no_mispredict) for k in range(n)]

    elaborate_datapath(module, machine, ue, rewrite=identity_rewriter)
    drive_latency_counters(module, machine, ue, occupied=at_stage)

    for spec, mispredict in zip(machine.speculations, mispredicts):
        for j in range(spec.guess_stage + 1, spec.resolve_stage + 1):
            source: E.Expr = (
                spec.guess
                if j - 1 == spec.guess_stage
                else E.reg_read(spec.guess_name(j - 1), spec.guess.width)
            )
            module.drive_register(spec.guess_name(j), source, enable=ue[j - 1])
        for target, value in spec.repairs.items():
            reg = module.registers[target]
            module.drive_register(
                target,
                E.mux(mispredict, value, reg.next),
                enable=E.bor(reg.enable, mispredict),
            )

    module.add_probe("seq.stage", counter)
    module.add_probe("seq.instr_done", ue[n - 1])
    module.validate()
    return module


def sequential_schedule(n_stages: int, cycles: int) -> list[dict[str, int]]:
    """The paper's Table 1: the round-robin ``ue`` pattern of an ``n``-stage
    sequential machine in the absence of stalls.

    Returns one row per cycle ``T`` = 1..cycles, mapping ``"ue_k"`` to 0/1.
    (The paper indexes cycles from 1 with ``ue_0`` active in cycle 1.)
    """
    rows = []
    for t in range(cycles):
        active = t % n_stages
        rows.append(
            {"T": t + 1, **{f"ue_{k}": int(k == active) for k in range(n_stages)}}
        )
    return rows
