"""Formal verification substrate: SAT, AIG bit-blasting, BDDs, BMC and
k-induction.

These engines discharge the proof obligations the pipeline transformation
emits (the role PVS played in the paper): safety properties of the stall
engine and forwarding logic are proved by k-induction on the generated
netlist, and combinational identities (e.g. forwarding-structure variants)
by equivalence checking.
"""

from .aig import Aig, BitBlaster, BlastError, fresh_vec, to_cnf, vec_value
from .bdd import Bdd, bdd_from_aig
from .bmc import (
    CheckResult,
    Counterexample,
    TransitionSystem,
    Unroller,
    bmc,
    bmc_bdd,
    k_induction,
    prove,
)
from .equiv import EquivResult, check_equivalence, exprs_equal_on
from .refinement import RefinementResult, StepRefinement
from .sat import SatResult, Solver, solve_cnf

__all__ = [
    "Aig",
    "Bdd",
    "BitBlaster",
    "BlastError",
    "CheckResult",
    "Counterexample",
    "EquivResult",
    "RefinementResult",
    "StepRefinement",
    "SatResult",
    "Solver",
    "TransitionSystem",
    "Unroller",
    "bdd_from_aig",
    "bmc",
    "bmc_bdd",
    "check_equivalence",
    "exprs_equal_on",
    "fresh_vec",
    "k_induction",
    "prove",
    "solve_cnf",
    "to_cnf",
    "vec_value",
]
