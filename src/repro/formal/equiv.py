"""Combinational equivalence checking.

Builds a miter over two expressions whose ``RegRead``/``Input``/``MemRead``
leaves are treated as shared free variables, and decides it with either the
CDCL SAT solver (default) or the BDD engine.  Used to check, e.g., that the
log-depth forwarding tree is equivalent to the priority mux chain, and that
the paper's precomputed signals equal their recomputed counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import expr as E
from .aig import Aig, BitBlaster, Vec, fresh_vec, to_cnf, vec_value
from .bdd import Bdd, bdd_from_aig
from .sat import Solver


@dataclass
class EquivResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    # On inequivalence: a distinguishing assignment for every free leaf.
    witness_regs: dict[str, int] | None = None
    witness_inputs: dict[str, int] | None = None
    witness_mems: dict[str, list[int]] | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _shared_blaster(a: E.Expr, b: E.Expr) -> tuple[Aig, BitBlaster]:
    """Allocate one fresh variable vector per distinct leaf of both DAGs."""
    aig = Aig()
    regs: dict[str, Vec] = {}
    inputs: dict[str, Vec] = {}
    mem_words: dict[str, list[Vec]] = {}
    for node in E.walk([a, b]):
        if isinstance(node, E.RegRead) and node.name not in regs:
            regs[node.name] = fresh_vec(aig, node.width)
        elif isinstance(node, E.Input) and node.name not in inputs:
            inputs[node.name] = fresh_vec(aig, node.width)
        elif isinstance(node, E.MemRead) and node.mem not in mem_words:
            mem_words[node.mem] = [
                fresh_vec(aig, node.width) for _ in range(1 << node.addr.width)
            ]
    return aig, BitBlaster(aig, regs=regs, inputs=inputs, mem_words=mem_words)


def check_equivalence(a: E.Expr, b: E.Expr, engine: str = "sat") -> EquivResult:
    """Decide whether ``a`` and ``b`` compute the same function.

    ``engine`` is ``"sat"`` or ``"bdd"``.  Leaves are matched by name: the
    same register/input/memory name in both expressions denotes the same
    free value.
    """
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    if engine == "sat":
        return _check_sat(a, b)
    if engine == "bdd":
        return _check_bdd(a, b)
    raise ValueError(f"unknown engine {engine!r} (use 'sat' or 'bdd')")


def _check_sat(a: E.Expr, b: E.Expr) -> EquivResult:
    aig, blaster = _shared_blaster(a, b)
    va = blaster.blast(a)
    vb = blaster.blast(b)
    diff = aig.or_many([aig.xor_(x, y) for x, y in zip(va, vb)])
    if diff == 0:
        return EquivResult(equivalent=True)
    if diff == 1:
        # structurally constant-different; build an arbitrary witness
        return _witness(aig, blaster, {})
    clauses, (root,) = to_cnf(aig, [diff])
    solver = Solver()
    solver.add_clauses(clauses)
    solver.add_clause([root])
    result = solver.solve()
    if result.satisfiable is False:
        return EquivResult(equivalent=True)
    if result.satisfiable is None:  # pragma: no cover - budget exhaustion
        raise RuntimeError("SAT solver exhausted its budget")
    return _witness(aig, blaster, result.model)


def _witness(aig: Aig, blaster: BitBlaster, model: dict[int, bool]) -> EquivResult:
    return EquivResult(
        equivalent=False,
        witness_regs={
            name: vec_value(vec, model, aig) for name, vec in blaster.regs.items()
        },
        witness_inputs={
            name: vec_value(vec, model, aig) for name, vec in blaster.inputs.items()
        },
        witness_mems={
            name: [vec_value(word, model, aig) for _, word in sorted(words.items())]
            for name, words in blaster.mem_words.items()
        },
    )


def _check_bdd(a: E.Expr, b: E.Expr) -> EquivResult:
    aig, blaster = _shared_blaster(a, b)
    va = blaster.blast(a)
    vb = blaster.blast(b)
    bdd = Bdd()
    var_map = {lit >> 1: bdd.new_var() for lit in aig._inputs}
    node_of = bdd_from_aig(bdd, aig.ands, var_map)

    def lit_node(lit: int) -> int:
        base = node_of[lit >> 1]
        return bdd.not_(base) if lit & 1 else base

    for x, y in zip(va, vb):
        if not bdd.equivalent(lit_node(x), lit_node(y)):
            # extract a witness assignment over AIG input vars
            diff = bdd.xor_(lit_node(x), lit_node(y))
            assignment = bdd.satisfy_one(diff) or {}
            # satisfy_one returns var *indices*; map BDD var index -> AIG var
            index_to_aig = {
                bdd.var_of(bdd_node): aig_var
                for aig_var, bdd_node in var_map.items()
            }
            model = {
                index_to_aig[idx]: value
                for idx, value in assignment.items()
                if idx in index_to_aig
            }
            return _witness(aig, blaster, model)
    return EquivResult(equivalent=True)


def exprs_equal_on(a: E.Expr, b: E.Expr) -> bool:
    """Shorthand: are the two expressions functionally identical?"""
    return check_equivalence(a, b).equivalent
