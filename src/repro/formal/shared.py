"""Cross-obligation proof sharing: one unrolling, many properties.

A :class:`SharedContext` generalises
:class:`repro.formal.bmc.IncrementalChecker` from one property to a
*group* of properties over the same :class:`TransitionSystem`.  The group
shares what is expensive and separates what is not:

* **one** base unrolling (concrete reset frame) and **one** step
  unrolling (free initial frame), both over the *union* of the members'
  cone-of-influence slices — frame blasting, fraig sweeping and Tseitin
  encoding are paid once per group instead of once per obligation;
* **one** CDCL solver per unrolling, so learned clauses, variable
  activities and saved phases earned while discharging one member carry
  over to its siblings (most of the transition logic is common);
* per-member **activation literals**: everything member-specific — the
  induction hypothesis, per-frame environment assumptions, and the
  "frame ``t`` is violation-free" strengthenings — is added as clauses
  guarded by a fresh activation input, and a member's queries assume its
  own literal.  With the literal unassumed those clauses are vacuously
  satisfiable, so siblings never observe each other's constraints.

Verdict equivalence: for any member, the shared clause database restricted
to that member's activation literal is satisfiability-equivalent to the
database the per-obligation :class:`IncrementalChecker` would have built —
extra state variables in the union cone are deterministic functions of
free inputs (always extendable) and other members' guarded clauses are
vacuous with their activation literal free.  ``tests/test_shared.py``
holds grouped discharge to *verbatim identical* verdicts/methods/details
against the per-obligation engine.  (Under a ``max_conflicts`` budget the
shared solver may decide a query the isolated one gives up on — sharing
only ever adds derived clauses — so equivalence is exact precisely when
no budget/interrupt fires.)

Grouping itself is keyed by the hash-consed DAG roots of the transition
system (:func:`group_key`): obligations discharge together exactly when
they constrain the same interned next-state functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..hdl import expr as E
from .aig import fresh_vec
from .bmc import (
    CheckResult,
    IncrementalUnroller,
    TransitionSystem,
    Counterexample,
)
from .sat import SatResult


@dataclass(frozen=True)
class SharedMember:
    """One property (plus its environment assumptions) of a group."""

    prop: E.Expr
    assume: tuple[E.Expr, ...] = ()


def group_key(system: TransitionSystem) -> tuple[int, ...]:
    """Hash-consed identity of a transition system.

    Two obligation sets may share a :class:`SharedContext` exactly when
    their systems agree on this key: the interned node ids of every
    state variable's next-state function (plus name/width/init).  Interned
    ids are object identities in the hash-consed DAG, so equal keys mean
    the *same* transition functions, not merely isomorphic ones.
    """
    return tuple(
        hash((var.name, var.width, var.init, id(var.next)))
        for var in system.state
    )


class SharedContext:
    """Grouped incremental discharge over one shared unrolling pair.

    Mirrors :class:`IncrementalChecker` member by member: ``bmc_to``,
    ``induction_step`` and ``k_induction`` take a member index and behave
    exactly like the per-obligation methods, except that member-specific
    constraints go through that member's activation literal instead of
    unit clauses.  Escalation schedules (which k, which bounds, in what
    order) are the caller's business, as before.

    ``interrupt`` is a mutable attribute: the group driver points it at
    the *current* member's budget callback before each member's queries,
    which is how per-obligation timeouts survive inside a group.
    """

    def __init__(
        self,
        system: TransitionSystem,
        members: Sequence[SharedMember],
        max_conflicts: int | None = None,
        interrupt: Callable[[], bool] | None = None,
        sweep_frames: bool = False,
    ) -> None:
        self.system = system
        self.members = list(members)
        if not self.members:
            raise ValueError("a shared context needs at least one member")
        roots: list[E.Expr] = []
        for member in self.members:
            roots.append(member.prop)
            roots.extend(member.assume)
        # union cone: sliced once for the whole group
        self.support = system.cone_of_influence(roots)
        self.max_conflicts = max_conflicts
        self.interrupt = interrupt
        self._sweep_frames = sweep_frames
        self._base = IncrementalUnroller(
            system, support=self.support, free_init=False,
            sweep_frames=sweep_frames,
        )
        self._step: IncrementalUnroller | None = None
        n = len(self.members)
        # per-member activation literals (DIMACS), one per unrolling
        self._act_base: list[int | None] = [None] * n
        self._act_step: list[int | None] = [None] * n
        self._base_proved = [-1] * n  # highest frame proved violation-free
        self._step_hyp = [-1] * n  # step frames 0..n carry the hypothesis
        self._step_assumed = [-1] * n  # step frames 0..n carry the assumptions
        self.conflicts = [0] * n  # solver conflicts attributed per member

    @property
    def frames(self) -> int:
        peak = len(self._base.frames)
        if self._step is not None:
            peak = max(peak, len(self._step.frames))
        return peak

    def _activation(self, unroller: IncrementalUnroller, acts: list[int | None], index: int) -> int:
        lit = acts[index]
        if lit is None:
            # a fresh AIG input: encode() emits no defining clauses for it,
            # so the literal is free until the first guarded clause lands
            lit = unroller.emitter.encode(fresh_vec(unroller.aig, 1)[0])
            acts[index] = lit
        return lit

    def _guard(
        self,
        unroller: IncrementalUnroller,
        act: int,
        frame: int,
        expression: E.Expr,
    ) -> None:
        """Constrain a 1-bit expression to hold in a frame *for one member*:
        the guarded clause (¬act ∨ expr@frame) is vacuous unless the
        member's activation literal is assumed."""
        unroller.solver.add_clause([-act, unroller.literal(frame, expression)])

    def _query(
        self, unroller: IncrementalUnroller, index: int, assumptions: list[int]
    ) -> SatResult:
        result = unroller.solver.solve(
            assumptions=assumptions,
            max_conflicts=self.max_conflicts,
            interrupt=self.interrupt,
        )
        self.conflicts[index] += result.conflicts
        return result

    def _result(
        self,
        index: int,
        holds: bool | None,
        bound: int,
        method: str,
        counterexample: Counterexample | None = None,
    ) -> CheckResult:
        return CheckResult(
            holds=holds,
            bound=bound,
            method=method,
            counterexample=counterexample,
            conflicts=self.conflicts[index],
            frames=self.frames,
        )

    def bmc_to(self, index: int, bound: int) -> CheckResult:
        """Member ``index``'s property checked in frames 0..bound from
        reset, extending any previously checked prefix (exactly
        :meth:`IncrementalChecker.bmc_to`, activation-guarded)."""
        member = self.members[index]
        act = self._activation(self._base, self._act_base, index)
        for t in range(self._base_proved[index] + 1, bound + 1):
            self._base.ensure_frames(t + 1)
            for assumption in member.assume:
                self._guard(self._base, act, t, assumption)
            good = self._base.literal(t, member.prop)
            result = self._query(self._base, index, [act, -good])
            if result.satisfiable is True:
                return self._result(
                    index,
                    False,
                    t,
                    "bmc",
                    counterexample=self._base.decode_solver_model(
                        result.model, t + 1
                    ),
                )
            if result.satisfiable is None:
                return self._result(index, None, t, "bmc")
            # implied under act; strengthens this member's frames t+1..
            self._base.solver.add_clause([-act, good])
            self._base_proved[index] = t
        return self._result(index, True, bound, "bmc")

    def induction_step(self, index: int, k: int) -> bool | None:
        """Member ``index``'s k-induction step check on the shared
        free-init unrolling; semantics and monotonicity contract match
        :meth:`IncrementalChecker.induction_step`."""
        if k - 1 < self._step_hyp[index]:
            raise ValueError("induction-step bounds must not decrease")
        if self._step is None:
            self._step = IncrementalUnroller(
                self.system,
                support=self.support,
                free_init=True,
                sweep_frames=self._sweep_frames,
            )
        step = self._step
        member = self.members[index]
        step.ensure_frames(k + 1)
        act = self._activation(step, self._act_step, index)
        for t in range(self._step_hyp[index] + 1, k):
            self._guard(step, act, t, member.prop)
        self._step_hyp[index] = max(self._step_hyp[index], k - 1)
        for t in range(self._step_assumed[index] + 1, k + 1):
            for assumption in member.assume:
                self._guard(step, act, t, assumption)
        self._step_assumed[index] = max(self._step_assumed[index], k)
        result = self._query(
            step, index, [act, -step.literal(k, member.prop)]
        )
        if result.satisfiable is False:
            return True
        return None

    def k_induction(self, index: int, k: int) -> CheckResult:
        base = self.bmc_to(index, k - 1)
        if base.holds is not True:
            return self._result(
                index,
                base.holds,
                base.bound,
                "k-induction(base)",
                base.counterexample,
            )
        if self.induction_step(index, k) is True:
            return self._result(index, True, k, "k-induction")
        return self._result(index, None, k, "k-induction(step)")

    def prove(self, index: int, max_k: int = 4) -> CheckResult:
        last = self._result(index, None, 0, "k-induction")
        for k in range(1, max_k + 1):
            last = self.k_induction(index, k)
            if last.holds is not None:
                return last
        return last
