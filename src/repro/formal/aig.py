"""And-Inverter Graphs and bit-blasting of the HDL expression IR.

The AIG uses the AIGER literal convention: a literal is ``2*var + sign``;
variable 0 is the constant, so literal 0 is FALSE and literal 1 is TRUE.
AND nodes are structurally hashed and constant-folded at construction.

:class:`BitBlaster` lowers :mod:`repro.hdl.expr` DAGs to vectors of AIG
literals (LSB first): ripple-carry adders, borrow-chain comparators, barrel
shifters and mux trees for memory reads.  :func:`to_cnf` produces a one-shot
Tseitin encoding for the CDCL solver; :class:`CnfEmitter` is its incremental
counterpart, feeding new nodes of a growing AIG into one persistent solver
so unrollings can extend a query instead of restarting it.

:func:`sweep` is a fraiging-style rewrite pass: deterministic random
simulation buckets nodes by their signature, candidate equivalences
(including constants) are confirmed with bounded SAT checks, and confirmed
nodes are mapped onto their oldest representative.  Structural hashing
already merges *structurally* identical nodes; the sweep additionally
collapses nodes that are semantically equal but built differently — the
case that arises when successive unrolled frames recompute the same
function along different paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from ..hdl import expr as E

if TYPE_CHECKING:  # pragma: no cover
    from .sat import SatResult, Solver

FALSE = 0
TRUE = 1


class Aig:
    """A mutable And-Inverter Graph with structural hashing."""

    def __init__(self) -> None:
        self._num_vars = 0
        # ands[i] = (lhs_var, rhs0_lit, rhs1_lit); lhs_var allocated in order
        self.ands: list[tuple[int, int, int]] = []
        self._hash: dict[tuple[int, int], int] = {}
        self._inputs: list[int] = []

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_input(self) -> int:
        """Allocate a free variable; returns its positive literal."""
        self._num_vars += 1
        lit = 2 * self._num_vars
        self._inputs.append(lit)
        return lit

    @staticmethod
    def neg(a: int) -> int:
        return a ^ 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with folding and structural hashing."""
        if a == FALSE or b == FALSE or a == self.neg(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._hash.get(key)
        if cached is not None:
            return cached
        self._num_vars += 1
        var = self._num_vars
        self.ands.append((var, a, b))
        lit = 2 * var
        self._hash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return self.neg(self.and_(self.neg(a), self.neg(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.neg(
            self.and_(
                self.neg(self.and_(a, self.neg(b))),
                self.neg(self.and_(self.neg(a), b)),
            )
        )

    def xnor_(self, a: int, b: int) -> int:
        return self.neg(self.xor_(a, b))

    def mux_(self, sel: int, then: int, els: int) -> int:
        if sel == TRUE:
            return then
        if sel == FALSE:
            return els
        if then == els:
            return then
        return self.or_(self.and_(sel, then), self.and_(self.neg(sel), els))

    def implies_(self, a: int, b: int) -> int:
        return self.or_(self.neg(a), b)

    def and_many(self, lits: Sequence[int]) -> int:
        result = TRUE
        for lit in lits:
            result = self.and_(result, lit)
        return result

    def or_many(self, lits: Sequence[int]) -> int:
        result = FALSE
        for lit in lits:
            result = self.or_(result, lit)
        return result

    # -- evaluation (for counterexample replay and tests) ---------------------

    def evaluate(self, assignment: Mapping[int, bool], lits: Sequence[int]) -> list[bool]:
        """Evaluate literals under an assignment of input variables."""
        values: dict[int, bool] = {0: False}
        for lit in self._inputs:
            values[lit >> 1] = bool(assignment.get(lit >> 1, False))
        for var, a, b in self.ands:
            va = values[a >> 1] ^ bool(a & 1)
            vb = values[b >> 1] ^ bool(b & 1)
            values[var] = va and vb
        return [values[lit >> 1] ^ bool(lit & 1) for lit in lits]


def to_cnf(aig: Aig, roots: Sequence[int]) -> tuple[list[list[int]], list[int]]:
    """Tseitin-encode the cones of ``roots``.

    Returns ``(clauses, root_lits)`` where DIMACS variable ``v`` corresponds
    to AIG variable ``v`` (variable 0 — the constant — is encoded by a fresh
    always-true variable appended at the end).

    Only AND nodes in the cones of the roots are encoded.
    """
    needed: set[int] = set()
    stack = [lit >> 1 for lit in roots]
    and_of_var = {var: (a, b) for var, a, b in aig.ands}
    while stack:
        var = stack.pop()
        if var in needed or var == 0:
            continue
        needed.add(var)
        node = and_of_var.get(var)
        if node is not None:
            stack.append(node[0] >> 1)
            stack.append(node[1] >> 1)

    true_var = aig.num_vars + 1

    def dimacs(lit: int) -> int:
        var = lit >> 1
        if var == 0:
            # AIG literal 0 is FALSE, literal 1 is TRUE; true_var is
            # constrained true, so the polarity flips relative to regular
            # variables.
            return true_var if lit & 1 else -true_var
        return -var if lit & 1 else var

    clauses: list[list[int]] = [[true_var]]
    for var, a, b in aig.ands:
        if var not in needed:
            continue
        v = dimacs(2 * var)
        da = dimacs(a)
        db = dimacs(b)
        clauses.append([-v, da])
        clauses.append([-v, db])
        clauses.append([v, -da, -db])
    return clauses, [dimacs(lit) for lit in roots]


class CnfEmitter:
    """Incremental Tseitin encoding of a growing :class:`Aig` into one solver.

    DIMACS variable ``v+1`` stands for AIG variable ``v``; DIMACS variable 1
    is the constant (constrained true once at construction).  :meth:`encode`
    walks the cone of a literal and emits clauses only for AND nodes not yet
    encoded, so extending an unrolling by a frame costs exactly that frame's
    new logic.  The emitter assumes exclusive ownership of the solver's
    variable space.
    """

    def __init__(self, aig: Aig, solver: "Solver") -> None:
        self.aig = aig
        self.solver = solver
        self._and_of: dict[int, tuple[int, int]] = {}
        self._scanned = 0
        self._encoded: set[int] = set()
        solver.add_clause([1])  # DIMACS var 1 == AIG constant TRUE

    @staticmethod
    def to_dimacs(lit: int) -> int:
        """The solver literal for an AIG literal."""
        var = lit >> 1
        if var == 0:
            return 1 if lit & 1 else -1
        return -(var + 1) if lit & 1 else var + 1

    def encode(self, lit: int) -> int:
        """Ensure the cone of ``lit`` is in the solver; return its literal."""
        ands = self.aig.ands
        and_of = self._and_of
        while self._scanned < len(ands):
            var, a, b = ands[self._scanned]
            and_of[var] = (a, b)
            self._scanned += 1
        add = self.solver.add_clause
        encoded = self._encoded
        stack = [lit >> 1]
        while stack:
            var = stack.pop()
            if var == 0 or var in encoded:
                continue
            encoded.add(var)
            node = and_of.get(var)
            if node is None:
                continue  # a free input: no defining clauses
            a, b = node
            v = var + 1
            da = self.to_dimacs(a)
            db = self.to_dimacs(b)
            add([-v, da])
            add([-v, db])
            add([v, -da, -db])
            stack.append(a >> 1)
            stack.append(b >> 1)
        return self.to_dimacs(lit)

    def model_to_aig(self, model: Mapping[int, bool]) -> dict[int, bool]:
        """Translate a solver model back to AIG variable space."""
        return {var - 1: value for var, value in model.items() if var >= 2}


# ---------------------------------------------------------------------------
# Simulation-hash sweeping (fraig-style rewrite)
# ---------------------------------------------------------------------------

_SIM_WORDS = 4  # 4 x 64 deterministic input patterns per signature
_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def simulation_signatures(aig: Aig, words: int = _SIM_WORDS) -> dict[int, int]:
    """Per-variable simulation signatures under deterministic random input.

    Each input variable is driven with ``words`` x 64 pseudo-random
    (splitmix64-derived, platform-independent) patterns; AND nodes combine
    their children bitwise.  Two variables with different signatures are
    definitely inequivalent; equal signatures make an equivalence
    *candidate* for :func:`sweep` to confirm.
    """
    nbits = 64 * words
    mask = (1 << nbits) - 1
    sigs: dict[int, int] = {0: 0}
    for lit in aig._inputs:
        var = lit >> 1
        sig = 0
        for w in range(words):
            sig = (sig << 64) | _splitmix64(var * words + w)
        sigs[var] = sig
    for var, a, b in aig.ands:
        sa = sigs[a >> 1] ^ (mask if a & 1 else 0)
        sb = sigs[b >> 1] ^ (mask if b & 1 else 0)
        sigs[var] = sa & sb
    return sigs


@dataclass
class SweepResult:
    """Outcome of a :func:`sweep` pass."""

    subst: dict[int, int] = field(default_factory=dict)  # literal -> literal
    merged: int = 0  # nodes redirected to an equivalent representative
    constants: int = 0  # of which: proved constant TRUE/FALSE
    sat_checks: int = 0  # bounded SAT confirmations attempted

    def apply(self, lit: int) -> int:
        """The representative literal for ``lit`` (identity when unmerged)."""
        return self.subst.get(lit, lit)

    def apply_vec(self, vec: Vec) -> Vec:
        subst = self.subst
        return [subst.get(lit, lit) for lit in vec]


def sweep(
    aig: Aig,
    roots: Sequence[int],
    max_conflicts: int = 64,
    max_checks: int = 128,
) -> SweepResult:
    """Find nodes in the cones of ``roots`` equal to an older node/constant.

    Candidates are bucketed by simulation signature (polarity-canonical, so
    a node equal to the *negation* of an older one is found too), then each
    candidate pair is confirmed by a bounded SAT miter — only proven merges
    enter the substitution, so applying it is always sound.  A SAT refutation
    refines the bucket with the discovered counterexample pattern before the
    pass continues; an exhausted budget simply skips the pair.  At most
    ``max_checks`` SAT calls are spent.
    """
    from .sat import Solver

    sigs = simulation_signatures(aig)
    nbits = 64 * _SIM_WORDS
    mask = (1 << nbits) - 1

    # cone of the roots
    and_of = {var: (a, b) for var, a, b in aig.ands}
    cone: set[int] = set()
    stack = [lit >> 1 for lit in roots]
    while stack:
        var = stack.pop()
        if var in cone:
            continue
        cone.add(var)
        node = and_of.get(var)
        if node is not None:
            stack.append(node[0] >> 1)
            stack.append(node[1] >> 1)
    cone.add(0)  # the constant seeds its bucket, so constants sweep too

    # polarity-canonical buckets: var -> (key, negated?)
    buckets: dict[int, list[tuple[int, bool]]] = {}
    for var in sorted(cone):
        sig = sigs[var]
        inv = sig ^ mask
        if sig <= inv:
            buckets.setdefault(sig, []).append((var, False))
        else:
            buckets.setdefault(inv, []).append((var, True))

    result = SweepResult()

    def differ_sat(lit_a: int, lit_b: int) -> "SatResult":
        """SAT iff the two AIG literals can take different values."""
        clauses, (da, db) = to_cnf(aig, [lit_a, lit_b])
        solver = Solver()
        solver.add_clauses(clauses)
        solver.add_clause([da, db])
        solver.add_clause([-da, -db])
        return solver.solve(max_conflicts=max_conflicts)

    for members in buckets.values():
        # oldest node is the representative; members are var-ascending
        pending = list(members)
        while len(pending) > 1:
            rep_var, rep_neg = pending[0]
            rep_lit = 2 * rep_var + (1 if rep_neg else 0)
            survivors: list[tuple[int, bool]] = [pending[0]]
            refine: Mapping[int, bool] | None = None
            for var, neg in pending[1:]:
                if result.sat_checks >= max_checks:
                    return result
                if refine is not None:
                    survivors.append((var, neg))
                    continue
                cand_lit = 2 * var + (1 if neg else 0)
                result.sat_checks += 1
                verdict = differ_sat(rep_lit, cand_lit)
                if verdict.satisfiable is False:
                    # proven: cand_lit == rep_lit for all inputs
                    result.subst[2 * var] = rep_lit ^ (1 if neg else 0)
                    result.subst[2 * var + 1] = rep_lit ^ (0 if neg else 1)
                    result.merged += 1
                    if rep_var == 0:
                        result.constants += 1
                elif verdict.satisfiable is True:
                    # counterexample: split the bucket on this pattern and
                    # retry the disagreeing members among themselves
                    refine = {
                        lit >> 1: verdict.model.get(lit >> 1, False)
                        for lit in aig._inputs
                    }
                    survivors.append((var, neg))
                # budget exhausted (None): no merge, no refinement
            if refine is None:
                break
            values = aig.evaluate(
                refine, [2 * v for v, _neg in survivors]
            )
            rep_value = values[0] ^ survivors[0][1]
            agree = [
                member
                for member, value in zip(survivors, values)
                if (value ^ member[1]) == rep_value
            ]
            disagree = [
                member
                for member, value in zip(survivors, values)
                if (value ^ member[1]) != rep_value
            ]
            if len(agree) > 1 and agree[0] == survivors[0]:
                # keep refining against the same representative
                pending = agree
                # the disagreeing side forms its own candidate bucket
                if len(disagree) > 1:
                    buckets_extra = disagree
                    _sweep_subgroup(
                        aig, buckets_extra, differ_sat, result, max_checks
                    )
            else:
                pending = disagree
        # singleton buckets need no work
    return result


def _sweep_subgroup(
    aig: Aig,
    members: list[tuple[int, bool]],
    differ_sat: Callable[[int, int], "SatResult"],
    result: SweepResult,
    max_checks: int,
) -> None:
    """Confirm merges within a refined sub-bucket (no further splitting)."""
    rep_var, rep_neg = members[0]
    rep_lit = 2 * rep_var + (1 if rep_neg else 0)
    for var, neg in members[1:]:
        if result.sat_checks >= max_checks:
            return
        cand_lit = 2 * var + (1 if neg else 0)
        result.sat_checks += 1
        verdict = differ_sat(rep_lit, cand_lit)
        if verdict.satisfiable is False:
            result.subst[2 * var] = rep_lit ^ (1 if neg else 0)
            result.subst[2 * var + 1] = rep_lit ^ (0 if neg else 1)
            result.merged += 1
            if rep_var == 0:
                result.constants += 1


# ---------------------------------------------------------------------------
# Bit-blasting
# ---------------------------------------------------------------------------

Vec = list[int]  # literal vector, LSB first

MemEnv = Callable[[str], Sequence[Vec]]


class BlastError(ValueError):
    """Raised when an expression cannot be lowered (unbound leaf)."""


class BitBlaster:
    """Lowers expression DAGs to AIG literal vectors.

    The environment supplies vectors for ``RegRead`` and ``Input`` leaves
    and, via ``mem_words``, the per-word vectors of each memory (used to
    build mux trees for ``MemRead``).  ``mem_words`` values may be dense
    sequences (index = address; shorter-than-memory lists read as zero
    beyond the end) or sparse ``{address: vector}`` mappings as produced by
    cone-of-influence slicing — sparse memories may only be read at constant
    addresses that are actually materialised (anything else is a slicing
    bug and raises :class:`BlastError`).
    """

    def __init__(
        self,
        aig: Aig,
        regs: Mapping[str, Vec] | None = None,
        inputs: Mapping[str, Vec] | None = None,
        mem_words: Mapping[str, Sequence[Vec] | Mapping[int, Vec]] | None = None,
    ) -> None:
        self.aig = aig
        self.regs = dict(regs or {})
        self.inputs = dict(inputs or {})
        self.mem_words: dict[str, dict[int, Vec]] = {}
        self._mem_sparse: set[str] = set()
        for name, words in (mem_words or {}).items():
            if isinstance(words, Mapping):
                self.mem_words[name] = {a: list(w) for a, w in words.items()}
                self._mem_sparse.add(name)
            else:
                self.mem_words[name] = {a: list(w) for a, w in enumerate(words)}
        self._memo: dict[int, Vec] = {}

    def blast(self, root: E.Expr) -> Vec:
        memo = self._memo
        for node in E.walk([root]):
            if id(node) not in memo:
                memo[id(node)] = self._blast_node(node)
        return memo[id(root)]

    def blast_bit(self, root: E.Expr) -> int:
        if root.width != 1:
            raise BlastError(f"expected 1-bit expression, got width {root.width}")
        return self.blast(root)[0]

    # -- helpers ---------------------------------------------------------------

    def _const_vec(self, width: int, value: int) -> Vec:
        return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]

    def _adder(self, a: Vec, b: Vec, carry_in: int) -> tuple[Vec, int]:
        g = self.aig
        out: Vec = []
        carry = carry_in
        for x, y in zip(a, b):
            p = g.xor_(x, y)
            out.append(g.xor_(p, carry))
            carry = g.or_(g.and_(x, y), g.and_(p, carry))
        return out, carry

    def _ult(self, a: Vec, b: Vec) -> int:
        """a < b unsigned: borrow-out of a - b."""
        g = self.aig
        # a - b = a + ~b + 1; borrow = NOT carry-out
        _, carry = self._adder(a, [g.neg(x) for x in b], TRUE)
        return g.neg(carry)

    def _slt(self, a: Vec, b: Vec) -> int:
        g = self.aig
        sa, sb = a[-1], b[-1]
        unsigned_lt = self._ult(a, b)
        return g.mux_(g.xor_(sa, sb), sa, unsigned_lt)

    def _multiplier(self, a: Vec, b: Vec) -> Vec:
        """Shift-add array multiplier (low ``width`` bits of the product)."""
        g = self.aig
        width = len(a)
        acc = self._const_vec(width, 0)
        for i, bit_lit in enumerate(b):
            if bit_lit == FALSE:
                continue
            partial = [FALSE] * i + [g.and_(bit_lit, x) for x in a[: width - i]]
            acc, _ = self._adder(acc, partial, FALSE)
        return acc

    def _shift(self, op: str, a: Vec, amount: Vec) -> Vec:
        g = self.aig
        width = len(a)
        fill = a[-1] if op == "ASHR" else FALSE
        result = list(a)
        used_bits = 0
        step = 1
        while step < width and used_bits < len(amount):
            sel = amount[used_bits]
            shifted: Vec = []
            for i in range(width):
                if op == "SHL":
                    src = result[i - step] if i - step >= 0 else FALSE
                else:  # LSHR / ASHR
                    src = result[i + step] if i + step < width else fill
                shifted.append(g.mux_(sel, src, result[i]))
            result = shifted
            used_bits += 1
            step <<= 1
        # any higher amount bit set -> full shift-out
        big = g.or_many(amount[used_bits:])
        return [g.mux_(big, fill, bitlit) for bitlit in result]

    def _mem_mux(self, mem: str, addr: Vec, width: int) -> Vec:
        g = self.aig
        words = self.mem_words[mem]
        if all(lit in (FALSE, TRUE) for lit in addr):
            # constant address: select the word directly, no mux tree
            index = sum(1 << i for i, lit in enumerate(addr) if lit == TRUE)
            word = words.get(index)
            if word is not None:
                return list(word)
            if mem in self._mem_sparse:
                raise BlastError(
                    f"memory {mem!r}: word {index} not materialised"
                    " (cone-of-influence slicing bug)"
                )
            return self._const_vec(width, 0)
        size = 1 << len(addr)
        if mem in self._mem_sparse and any(a not in words for a in range(size)):
            raise BlastError(
                f"memory {mem!r}: symbolic read of a sparsely materialised"
                " memory (cone-of-influence slicing bug)"
            )
        level = [
            list(words[a]) if a in words else self._const_vec(width, 0)
            for a in range(size)
        ]
        for addr_bit in addr:
            level = [
                [
                    g.mux_(addr_bit, hi[i], lo[i])
                    for i in range(width)
                ]
                for lo, hi in zip(level[0::2], level[1::2])
            ]
        return level[0]

    # -- node dispatch ----------------------------------------------------------

    def _blast_node(self, node: E.Expr) -> Vec:
        g = self.aig
        memo = self._memo
        if isinstance(node, E.Const):
            return self._const_vec(node.width, node.value)
        if isinstance(node, E.RegRead):
            vec = self.regs.get(node.name)
            if vec is None:
                raise BlastError(f"unbound register {node.name!r}")
            if len(vec) != node.width:
                raise BlastError(f"register {node.name!r}: vector width mismatch")
            return list(vec)
        if isinstance(node, E.Input):
            vec = self.inputs.get(node.name)
            if vec is None:
                raise BlastError(f"unbound input {node.name!r}")
            if len(vec) != node.width:
                raise BlastError(f"input {node.name!r}: vector width mismatch")
            return list(vec)
        if isinstance(node, E.MemRead):
            if node.mem not in self.mem_words:
                raise BlastError(f"unbound memory {node.mem!r}")
            return self._mem_mux(node.mem, memo[id(node.addr)], node.width)
        if isinstance(node, E.Unary):
            a = memo[id(node.a)]
            if node.op == "NOT":
                return [g.neg(x) for x in a]
            if node.op == "NEG":
                out, _ = self._adder(
                    [g.neg(x) for x in a], self._const_vec(len(a), 0), TRUE
                )
                return out
            if node.op == "REDOR":
                return [g.or_many(a)]
            if node.op == "REDAND":
                return [g.and_many(a)]
            if node.op == "REDXOR":
                acc = FALSE
                for x in a:
                    acc = g.xor_(acc, x)
                return [acc]
            raise AssertionError(node.op)
        if isinstance(node, E.Binary):
            a = memo[id(node.a)]
            b = memo[id(node.b)]
            op = node.op
            if op == "AND":
                return [g.and_(x, y) for x, y in zip(a, b)]
            if op == "OR":
                return [g.or_(x, y) for x, y in zip(a, b)]
            if op == "XOR":
                return [g.xor_(x, y) for x, y in zip(a, b)]
            if op == "ADD":
                out, _ = self._adder(a, b, FALSE)
                return out
            if op == "SUB":
                out, _ = self._adder(a, [g.neg(y) for y in b], TRUE)
                return out
            if op == "MUL":
                return self._multiplier(a, b)
            if op == "EQ":
                return [g.and_many([g.xnor_(x, y) for x, y in zip(a, b)])]
            if op == "NE":
                return [g.neg(g.and_many([g.xnor_(x, y) for x, y in zip(a, b)]))]
            if op == "ULT":
                return [self._ult(a, b)]
            if op == "ULE":
                return [g.neg(self._ult(b, a))]
            if op == "SLT":
                return [self._slt(a, b)]
            if op == "SLE":
                return [g.neg(self._slt(b, a))]
            if op in ("SHL", "LSHR", "ASHR"):
                return self._shift(op, a, b)
            raise AssertionError(op)
        if isinstance(node, E.Mux):
            sel = memo[id(node.sel)][0]
            then = memo[id(node.then)]
            els = memo[id(node.els)]
            return [g.mux_(sel, t, e) for t, e in zip(then, els)]
        if isinstance(node, E.Concat):
            out: Vec = []
            for part in reversed(node.parts):
                out.extend(memo[id(part)])
            return out
        if isinstance(node, E.Slice):
            return memo[id(node.a)][node.low : node.high + 1]
        raise AssertionError(type(node).__name__)


def fresh_vec(aig: Aig, width: int) -> Vec:
    """Allocate ``width`` fresh input variables as a literal vector."""
    return [aig.new_input() for _ in range(width)]


def vec_value(vec: Vec, model: Mapping[int, bool], aig: Aig) -> int:
    """Decode a literal vector to an integer under a SAT model.

    ``model`` maps DIMACS variables (== AIG variables) to booleans.
    """
    value = 0
    for i, lit in enumerate(vec):
        var = lit >> 1
        bit = False if var == 0 else bool(model.get(var, False))
        if bit ^ bool(lit & 1):
            value |= 1 << i
    return value
