"""And-Inverter Graphs and bit-blasting of the HDL expression IR.

The AIG uses the AIGER literal convention: a literal is ``2*var + sign``;
variable 0 is the constant, so literal 0 is FALSE and literal 1 is TRUE.
AND nodes are structurally hashed and constant-folded at construction.

:class:`BitBlaster` lowers :mod:`repro.hdl.expr` DAGs to vectors of AIG
literals (LSB first): ripple-carry adders, borrow-chain comparators, barrel
shifters and mux trees for memory reads.  :func:`to_cnf` then produces a
Tseitin encoding for the CDCL solver.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..hdl import expr as E

FALSE = 0
TRUE = 1


class Aig:
    """A mutable And-Inverter Graph with structural hashing."""

    def __init__(self) -> None:
        self._num_vars = 0
        # ands[i] = (lhs_var, rhs0_lit, rhs1_lit); lhs_var allocated in order
        self.ands: list[tuple[int, int, int]] = []
        self._hash: dict[tuple[int, int], int] = {}
        self._inputs: list[int] = []

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_input(self) -> int:
        """Allocate a free variable; returns its positive literal."""
        self._num_vars += 1
        lit = 2 * self._num_vars
        self._inputs.append(lit)
        return lit

    @staticmethod
    def neg(a: int) -> int:
        return a ^ 1

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with folding and structural hashing."""
        if a == FALSE or b == FALSE or a == self.neg(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        cached = self._hash.get(key)
        if cached is not None:
            return cached
        self._num_vars += 1
        var = self._num_vars
        self.ands.append((var, a, b))
        lit = 2 * var
        self._hash[key] = lit
        return lit

    def or_(self, a: int, b: int) -> int:
        return self.neg(self.and_(self.neg(a), self.neg(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.neg(
            self.and_(
                self.neg(self.and_(a, self.neg(b))),
                self.neg(self.and_(self.neg(a), b)),
            )
        )

    def xnor_(self, a: int, b: int) -> int:
        return self.neg(self.xor_(a, b))

    def mux_(self, sel: int, then: int, els: int) -> int:
        if sel == TRUE:
            return then
        if sel == FALSE:
            return els
        if then == els:
            return then
        return self.or_(self.and_(sel, then), self.and_(self.neg(sel), els))

    def implies_(self, a: int, b: int) -> int:
        return self.or_(self.neg(a), b)

    def and_many(self, lits: Sequence[int]) -> int:
        result = TRUE
        for lit in lits:
            result = self.and_(result, lit)
        return result

    def or_many(self, lits: Sequence[int]) -> int:
        result = FALSE
        for lit in lits:
            result = self.or_(result, lit)
        return result

    # -- evaluation (for counterexample replay and tests) ---------------------

    def evaluate(self, assignment: Mapping[int, bool], lits: Sequence[int]) -> list[bool]:
        """Evaluate literals under an assignment of input variables."""
        values: dict[int, bool] = {0: False}
        for lit in self._inputs:
            values[lit >> 1] = bool(assignment.get(lit >> 1, False))
        for var, a, b in self.ands:
            va = values[a >> 1] ^ bool(a & 1)
            vb = values[b >> 1] ^ bool(b & 1)
            values[var] = va and vb
        return [values[lit >> 1] ^ bool(lit & 1) for lit in lits]


def to_cnf(aig: Aig, roots: Sequence[int]) -> tuple[list[list[int]], list[int]]:
    """Tseitin-encode the cones of ``roots``.

    Returns ``(clauses, root_lits)`` where DIMACS variable ``v`` corresponds
    to AIG variable ``v`` (variable 0 — the constant — is encoded by a fresh
    always-true variable appended at the end).

    Only AND nodes in the cones of the roots are encoded.
    """
    needed: set[int] = set()
    stack = [lit >> 1 for lit in roots]
    and_of_var = {var: (a, b) for var, a, b in aig.ands}
    while stack:
        var = stack.pop()
        if var in needed or var == 0:
            continue
        needed.add(var)
        node = and_of_var.get(var)
        if node is not None:
            stack.append(node[0] >> 1)
            stack.append(node[1] >> 1)

    true_var = aig.num_vars + 1

    def dimacs(lit: int) -> int:
        var = lit >> 1
        if var == 0:
            # AIG literal 0 is FALSE, literal 1 is TRUE; true_var is
            # constrained true, so the polarity flips relative to regular
            # variables.
            return true_var if lit & 1 else -true_var
        return -var if lit & 1 else var

    clauses: list[list[int]] = [[true_var]]
    for var, a, b in aig.ands:
        if var not in needed:
            continue
        v = dimacs(2 * var)
        da = dimacs(a)
        db = dimacs(b)
        clauses.append([-v, da])
        clauses.append([-v, db])
        clauses.append([v, -da, -db])
    return clauses, [dimacs(lit) for lit in roots]


# ---------------------------------------------------------------------------
# Bit-blasting
# ---------------------------------------------------------------------------

Vec = list[int]  # literal vector, LSB first

MemEnv = Callable[[str], Sequence[Vec]]


class BlastError(ValueError):
    """Raised when an expression cannot be lowered (unbound leaf)."""


class BitBlaster:
    """Lowers expression DAGs to AIG literal vectors.

    The environment supplies vectors for ``RegRead`` and ``Input`` leaves
    and, via ``mem_words``, the per-word vectors of each memory (used to
    build mux trees for ``MemRead``).
    """

    def __init__(
        self,
        aig: Aig,
        regs: Mapping[str, Vec] | None = None,
        inputs: Mapping[str, Vec] | None = None,
        mem_words: Mapping[str, Sequence[Vec]] | None = None,
    ) -> None:
        self.aig = aig
        self.regs = dict(regs or {})
        self.inputs = dict(inputs or {})
        self.mem_words = {k: [list(w) for w in v] for k, v in (mem_words or {}).items()}
        self._memo: dict[int, Vec] = {}

    def blast(self, root: E.Expr) -> Vec:
        memo = self._memo
        for node in E.walk([root]):
            if id(node) not in memo:
                memo[id(node)] = self._blast_node(node)
        return memo[id(root)]

    def blast_bit(self, root: E.Expr) -> int:
        if root.width != 1:
            raise BlastError(f"expected 1-bit expression, got width {root.width}")
        return self.blast(root)[0]

    # -- helpers ---------------------------------------------------------------

    def _const_vec(self, width: int, value: int) -> Vec:
        return [TRUE if (value >> i) & 1 else FALSE for i in range(width)]

    def _adder(self, a: Vec, b: Vec, carry_in: int) -> tuple[Vec, int]:
        g = self.aig
        out: Vec = []
        carry = carry_in
        for x, y in zip(a, b):
            p = g.xor_(x, y)
            out.append(g.xor_(p, carry))
            carry = g.or_(g.and_(x, y), g.and_(p, carry))
        return out, carry

    def _ult(self, a: Vec, b: Vec) -> int:
        """a < b unsigned: borrow-out of a - b."""
        g = self.aig
        # a - b = a + ~b + 1; borrow = NOT carry-out
        _, carry = self._adder(a, [g.neg(x) for x in b], TRUE)
        return g.neg(carry)

    def _slt(self, a: Vec, b: Vec) -> int:
        g = self.aig
        sa, sb = a[-1], b[-1]
        unsigned_lt = self._ult(a, b)
        return g.mux_(g.xor_(sa, sb), sa, unsigned_lt)

    def _multiplier(self, a: Vec, b: Vec) -> Vec:
        """Shift-add array multiplier (low ``width`` bits of the product)."""
        g = self.aig
        width = len(a)
        acc = self._const_vec(width, 0)
        for i, bit_lit in enumerate(b):
            if bit_lit == FALSE:
                continue
            partial = [FALSE] * i + [g.and_(bit_lit, x) for x in a[: width - i]]
            acc, _ = self._adder(acc, partial, FALSE)
        return acc

    def _shift(self, op: str, a: Vec, amount: Vec) -> Vec:
        g = self.aig
        width = len(a)
        fill = a[-1] if op == "ASHR" else FALSE
        result = list(a)
        used_bits = 0
        step = 1
        while step < width and used_bits < len(amount):
            sel = amount[used_bits]
            shifted: Vec = []
            for i in range(width):
                if op == "SHL":
                    src = result[i - step] if i - step >= 0 else FALSE
                else:  # LSHR / ASHR
                    src = result[i + step] if i + step < width else fill
                shifted.append(g.mux_(sel, src, result[i]))
            result = shifted
            used_bits += 1
            step <<= 1
        # any higher amount bit set -> full shift-out
        big = g.or_many(amount[used_bits:])
        return [g.mux_(big, fill, bitlit) for bitlit in result]

    def _mem_mux(self, words: Sequence[Vec], addr: Vec, width: int) -> Vec:
        g = self.aig
        size = 1 << len(addr)
        padded = [list(w) for w in words] + [
            self._const_vec(width, 0) for _ in range(size - len(words))
        ]
        level = padded[:size]
        for addr_bit in addr:
            level = [
                [
                    g.mux_(addr_bit, hi[i], lo[i])
                    for i in range(width)
                ]
                for lo, hi in zip(level[0::2], level[1::2])
            ]
        return level[0]

    # -- node dispatch ----------------------------------------------------------

    def _blast_node(self, node: E.Expr) -> Vec:
        g = self.aig
        memo = self._memo
        if isinstance(node, E.Const):
            return self._const_vec(node.width, node.value)
        if isinstance(node, E.RegRead):
            vec = self.regs.get(node.name)
            if vec is None:
                raise BlastError(f"unbound register {node.name!r}")
            if len(vec) != node.width:
                raise BlastError(f"register {node.name!r}: vector width mismatch")
            return list(vec)
        if isinstance(node, E.Input):
            vec = self.inputs.get(node.name)
            if vec is None:
                raise BlastError(f"unbound input {node.name!r}")
            if len(vec) != node.width:
                raise BlastError(f"input {node.name!r}: vector width mismatch")
            return list(vec)
        if isinstance(node, E.MemRead):
            words = self.mem_words.get(node.mem)
            if words is None:
                raise BlastError(f"unbound memory {node.mem!r}")
            return self._mem_mux(words, memo[id(node.addr)], node.width)
        if isinstance(node, E.Unary):
            a = memo[id(node.a)]
            if node.op == "NOT":
                return [g.neg(x) for x in a]
            if node.op == "NEG":
                out, _ = self._adder(
                    [g.neg(x) for x in a], self._const_vec(len(a), 0), TRUE
                )
                return out
            if node.op == "REDOR":
                return [g.or_many(a)]
            if node.op == "REDAND":
                return [g.and_many(a)]
            if node.op == "REDXOR":
                acc = FALSE
                for x in a:
                    acc = g.xor_(acc, x)
                return [acc]
            raise AssertionError(node.op)
        if isinstance(node, E.Binary):
            a = memo[id(node.a)]
            b = memo[id(node.b)]
            op = node.op
            if op == "AND":
                return [g.and_(x, y) for x, y in zip(a, b)]
            if op == "OR":
                return [g.or_(x, y) for x, y in zip(a, b)]
            if op == "XOR":
                return [g.xor_(x, y) for x, y in zip(a, b)]
            if op == "ADD":
                out, _ = self._adder(a, b, FALSE)
                return out
            if op == "SUB":
                out, _ = self._adder(a, [g.neg(y) for y in b], TRUE)
                return out
            if op == "MUL":
                return self._multiplier(a, b)
            if op == "EQ":
                return [g.and_many([g.xnor_(x, y) for x, y in zip(a, b)])]
            if op == "NE":
                return [g.neg(g.and_many([g.xnor_(x, y) for x, y in zip(a, b)]))]
            if op == "ULT":
                return [self._ult(a, b)]
            if op == "ULE":
                return [g.neg(self._ult(b, a))]
            if op == "SLT":
                return [self._slt(a, b)]
            if op == "SLE":
                return [g.neg(self._slt(b, a))]
            if op in ("SHL", "LSHR", "ASHR"):
                return self._shift(op, a, b)
            raise AssertionError(op)
        if isinstance(node, E.Mux):
            sel = memo[id(node.sel)][0]
            then = memo[id(node.then)]
            els = memo[id(node.els)]
            return [g.mux_(sel, t, e) for t, e in zip(then, els)]
        if isinstance(node, E.Concat):
            out: Vec = []
            for part in reversed(node.parts):
                out.extend(memo[id(part)])
            return out
        if isinstance(node, E.Slice):
            return memo[id(node.a)][node.low : node.high + 1]
        raise AssertionError(type(node).__name__)


def fresh_vec(aig: Aig, width: int) -> Vec:
    """Allocate ``width`` fresh input variables as a literal vector."""
    return [aig.new_input() for _ in range(width)]


def vec_value(vec: Vec, model: Mapping[int, bool], aig: Aig) -> int:
    """Decode a literal vector to an integer under a SAT model.

    ``model`` maps DIMACS variables (== AIG variables) to booleans.
    """
    value = 0
    for i, lit in enumerate(vec):
        var = lit >> 1
        bit = False if var == 0 else bool(model.get(var, False))
        if bit ^ bool(lit & 1):
            value |= 1 << i
    return value
