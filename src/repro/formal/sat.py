"""An incremental CDCL SAT solver.

This replaces the decision procedures the paper drove through PVS: the
bounded-model-checking and k-induction engines of :mod:`repro.formal.bmc`
discharge hardware proof obligations by handing CNF to this solver.

Implemented techniques: two-watched-literal propagation, first-UIP conflict
analysis with clause learning, VSIDS-style activity decision heuristic
(lazy max-heap) with phase saving, Luby restarts, and learned-clause
minimisation (self-subsuming resolution against reason clauses).

The solver is *incremental*: clauses may be added between :meth:`Solver.solve`
calls, and ``solve(assumptions=[...])`` treats the given literals as
temporary pseudo-decisions enqueued before any heuristic decision.  Learned
clauses never resolve past a decision, so everything learned under
assumptions is implied by the clause database alone and is retained — along
with variable activities and saved phases — across calls.  When the instance
is unsatisfiable *under the assumptions*, final-conflict analysis produces an
**unsat core**: a subset of the assumption literals sufficient for the
conflict (``SatResult.core``).  An unsatisfiable clause database (empty core)
makes the solver permanently UNSAT; assumption-relative UNSAT leaves it fully
reusable.

Literals use the DIMACS convention: variables are positive integers, a
negative integer denotes the negated variable.

The solver is fully deterministic — no randomness, no wall-clock dependence,
insertion-ordered data structures throughout — so the same clause set always
produces the same verdict, model and statistics.  Runs are interruptible in
two ways: a ``max_conflicts`` budget (the discharge engines degrade an
exhausted budget to an *unknown* verdict instead of hanging) and an
``interrupt`` callback polled between conflicts, which lets a cooperative
scheduler cancel an in-flight solve without killing the process.  Both are
per-call: an aborted call leaves the solver reusable, budgets do not carry
over.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

# Bumped whenever a change to the decision procedure could alter verdicts
# (bug fixes included); cached verdicts are keyed on it via
# :mod:`repro.proofs.fingerprint`, so stale results die with the old version.
SOLVER_VERSION = 2

# how many conflicts pass between polls of the `interrupt` callback
_INTERRUPT_GRANULARITY = 64


@dataclass
class SatResult:
    """Outcome of a solver run.

    ``satisfiable`` is None when the conflict budget ran out (unknown).
    ``model`` maps variable -> bool for satisfiable instances.
    ``core`` is only meaningful for UNSAT results of an assumption-based
    call: a subset of the assumption literals sufficient for
    unsatisfiability (empty when the clause database alone is UNSAT).
    """

    satisfiable: bool | None
    model: dict[int, bool] = field(default_factory=dict)
    core: list[int] = field(default_factory=list)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return bool(self.satisfiable)

    def value(self, var: int) -> bool:
        return self.model.get(var, False)


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class Solver:
    """Incremental CDCL solver over integer DIMACS literals."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        # assignment: var -> bool, plus trail bookkeeping
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, int | None] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        self._phase: dict[int, bool] = {}
        # lazy decision heap of (-activity, var); stale entries are skipped.
        # Only variables occurring in some clause are decidable: callers may
        # reserve large contiguous variable ranges (the incremental CNF
        # emitter numbers solver variables by AIG node), and deciding a
        # variable no clause mentions is pure waste.
        self._order: list[tuple[float, int]] = []
        self._decidable: set[int] = set()
        # clauses[:_unit_scan] have had their units applied to the
        # persistent level-0 assignment; solve() only scans the suffix
        self._unit_scan = 0
        self._ok = True
        self.stats = SatResult(satisfiable=None)

    # -- problem construction -------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; duplicate literals are merged, tautologies dropped.

        May be called between :meth:`solve` calls: the clause is simplified
        against the persistent top-level (level-0) assignment, so literals
        already false at level 0 are dropped and clauses already satisfied
        at level 0 are discarded outright.
        """
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
            value = self._root_value(lit)
            if value is True:
                return  # satisfied forever by the level-0 assignment
            if value is False:
                continue  # dropped: false forever
            clause.append(lit)
            var = abs(lit)
            if var not in self._decidable:
                self._decidable.add(var)
                heapq.heappush(self._order, (-self._activity.get(var, 0.0), var))
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            # store as unit; (re)applied at solve start
            self.clauses.append(clause)
            if self._trail_lim:  # pragma: no cover - not used mid-search
                return
            if not self._enqueue(clause[0], None):
                self._ok = False
            return
        self._attach(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def _root_value(self, lit: int) -> bool | None:
        """The literal's value under the level-0 assignment only."""
        var = abs(lit)
        value = self._assign.get(var)
        if value is None or self._level.get(var, 0) != 0:
            return None
        return value if lit > 0 else not value

    def _attach(self, clause: list[int]) -> int:
        index = len(self.clauses)
        self.clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    # -- assignment helpers ----------------------------------------------------

    def _lit_value(self, lit: int) -> bool | None:
        value = self._assign.get(abs(lit))
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        value = self._lit_value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        self.stats.propagations += 1
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns the index of a conflicting clause."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = -lit
            watch_list = self._watches.get(false_lit, [])
            kept: list[int] = []
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # normalise: watched literals are clause[0], clause[1]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    kept.append(ci)
                    continue
                # search replacement watch
                moved = False
                for j in range(2, len(clause)):
                    if self._lit_value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watches.setdefault(clause[1], []).append(ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if self._lit_value(first) is False:
                    # conflict
                    kept.extend(watch_list[i:])
                    self._watches[false_lit] = kept
                    self._qhead = len(self._trail)
                    return ci
                self._enqueue(first, ci)
            self._watches[false_lit] = kept
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, var: int) -> None:
        activity = self._activity.get(var, 0.0) + self._var_inc
        self._activity[var] = activity
        if activity > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_order()
        else:
            heapq.heappush(self._order, (-activity, var))

    def _rebuild_order(self) -> None:
        self._order = [
            (-self._activity.get(var, 0.0), var)
            for var in self._decidable
            if var not in self._assign
        ]
        heapq.heapify(self._order)

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit = 0
        clause = list(self.clauses[conflict])
        index = len(self._trail) - 1
        current_level = len(self._trail_lim)

        while True:
            for q in clause:
                var = abs(q)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            # pick next literal from trail at current level
            while abs(self._trail[index]) not in seen:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen.discard(var)
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
            assert reason is not None
            clause = [q for q in self.clauses[reason] if q != lit]

        learned = self._minimize(learned, seen)
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        # backjump to the second-highest level in the clause
        levels = sorted((self._level[abs(q)] for q in learned[1:]), reverse=True)
        back = levels[0]
        # move a literal of that level into watch position 1
        for i, q in enumerate(learned[1:], start=1):
            if self._level[abs(q)] == back:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, back

    def _minimize(self, learned: list[int], seen: set[int]) -> list[int]:
        """Drop literals implied by the rest of the clause (recursive
        minimisation against reason clauses)."""
        seen = set(seen) | {abs(q) for q in learned}
        result = []
        for q in learned:
            reason = self._reason.get(abs(q))
            if reason is None:
                result.append(q)
                continue
            if any(
                abs(r) not in seen and self._level.get(abs(r), 0) > 0
                for r in self.clauses[reason]
                if r != -q
            ):
                result.append(q)
        return result

    def _analyze_final(self, failed: int) -> list[int]:
        """Assumption literals responsible for ``failed`` being false.

        Walks the implication trail backwards from ``-failed``; every
        pseudo-decision (reason ``None`` above level 0) reached is an
        assumption, because assumptions are the only decisions on the trail
        when an assumption conflict is discovered.  The returned core is a
        subset of the call's assumptions (including ``failed`` itself) whose
        conjunction with the clause database is unsatisfiable.
        """
        core = [failed]
        if not self._trail_lim:
            return core  # forced at level 0 by the clause database
        seen = {abs(failed)}
        for index in range(len(self._trail) - 1, self._trail_lim[0] - 1, -1):
            lit = self._trail[index]
            var = abs(lit)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self._reason.get(var)
            if reason is None:
                core.append(lit)
                continue
            for q in self.clauses[reason]:
                if self._level.get(abs(q), 0) > 0:
                    seen.add(abs(q))
        return core

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        order = self._order
        decidable = self._decidable
        for lit in self._trail[limit:]:
            var = abs(lit)
            self._phase[var] = self._assign[var]
            del self._assign[var]
            del self._level[var]
            self._reason.pop(var, None)
            if var in decidable:
                heapq.heappush(order, (-self._activity.get(var, 0.0), var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = min(self._qhead, len(self._trail))

    def _decide(self) -> int | None:
        order = self._order
        activity = self._activity
        assign = self._assign
        best_var = None
        while order:
            neg_act, var = order[0]
            if var in assign or -neg_act != activity.get(var, 0.0):
                heapq.heappop(order)  # assigned or stale entry
                continue
            heapq.heappop(order)
            best_var = var
            break
        if best_var is None:
            return None
        phase = self._phase.get(best_var, False)
        return best_var if phase else -best_var

    # -- main loop ---------------------------------------------------------------

    def _result(
        self,
        satisfiable: bool | None,
        model: dict[int, bool] | None = None,
        core: list[int] | None = None,
    ) -> SatResult:
        return SatResult(
            satisfiable=satisfiable,
            model=model or {},
            core=core or [],
            conflicts=self.stats.conflicts,
            decisions=self.stats.decisions,
            propagations=self.stats.propagations,
        )

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: int | None = None,
        interrupt: Callable[[], bool] | None = None,
    ) -> SatResult:
        """Solve the instance under temporary unit ``assumptions``.

        ``max_conflicts`` caps the search (result ``satisfiable=None`` when
        exhausted); ``interrupt`` is polled every few conflicts and aborts
        the run with ``satisfiable=None`` when it returns True.  Both are
        per-call limits.  The solver is left at decision level 0 and fully
        reusable whatever the outcome; only a clause-database-level conflict
        (``core == []``) pins it to UNSAT permanently.
        """
        self.stats = SatResult(satisfiable=None)
        if not self._ok:
            return self._result(False)
        self._backtrack(0)

        # apply unit clauses stored since the last call; level-0
        # assignments persist across calls, so older units are already
        # on the trail and rescanning the whole database would make
        # every call O(clauses)
        for clause in self.clauses[self._unit_scan :]:
            if len(clause) == 1:
                if not self._enqueue(clause[0], None):
                    self._ok = False
                    return self._result(False)
        self._unit_scan = len(self.clauses)
        if self._propagate() is not None:
            self._ok = False
            return self._result(False)

        restart_count = 0
        conflicts_until_restart = 100 * _luby(restart_count + 1)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                out_of_budget = (
                    max_conflicts is not None
                    and self.stats.conflicts > max_conflicts
                )
                if not out_of_budget and (
                    interrupt is not None
                    and self.stats.conflicts % _INTERRUPT_GRANULARITY == 0
                ):
                    out_of_budget = interrupt()
                if out_of_budget:
                    self._backtrack(0)
                    return self._result(None)
                if not self._trail_lim:
                    self._ok = False
                    return self._result(False)
                learned, back_level = self._analyze(conflict)
                self._backtrack(back_level)
                self._var_inc *= 1.05
                if len(learned) == 1:
                    self.clauses.append(learned)  # retained across calls
                    if not self._enqueue(learned[0], None):
                        self._ok = False
                        return self._result(False)
                else:
                    ci = self._attach(learned)
                    self._enqueue(learned[0], ci)
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    conflicts_until_restart = 100 * _luby(restart_count + 1)
                    self._backtrack(0)
                continue

            # pick assumptions first
            decided = False
            for lit in assumptions:
                value = self._lit_value(lit)
                if value is False:
                    core = self._analyze_final(lit)
                    self._backtrack(0)
                    return self._result(False, core=core)
                if value is None:
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
                    decided = True
                    break
            if decided:
                continue

            lit = self._decide()
            if lit is None:
                result = self._result(True, model=dict(self._assign))
                self._backtrack(0)
                return result
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)


def solve_cnf(
    clauses: Iterable[Sequence[int]],
    assumptions: Sequence[int] = (),
    max_conflicts: int | None = None,
    interrupt: Callable[[], bool] | None = None,
) -> SatResult:
    """One-shot convenience wrapper around :class:`Solver`."""
    solver = Solver()
    solver.add_clauses(clauses)
    return solver.solve(
        assumptions=assumptions, max_conflicts=max_conflicts, interrupt=interrupt
    )
