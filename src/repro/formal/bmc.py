"""Bounded model checking and k-induction over HDL modules.

A :class:`TransitionSystem` is extracted from a :class:`repro.hdl.Module`:
registers and (expanded) memory words form the state, and each state
element's next-value is a single expression — ``mux(enable, next, hold)``
for registers, a write-port fold for memory words.

:func:`bmc` searches for a property violation within ``k`` steps from the
initial state; :func:`k_induction` proves a property invariant by the
standard base + inductive-step scheme.  Both bit-blast the unrolling to CNF
and use the CDCL solver from :mod:`repro.formal.sat`.

This engine is what discharges the hardware-level proof obligations the
transformation tool emits (the role PVS played for the paper's authors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..hdl import expr as E
from ..hdl.netlist import Module
from .aig import Aig, BitBlaster, Vec, fresh_vec, to_cnf
from .sat import Solver


@dataclass(frozen=True)
class StateVar:
    """One element of the transition system's state vector."""

    name: str
    width: int
    init: int
    next: E.Expr


class TransitionSystem:
    """A flat synchronous transition system extracted from a module."""

    def __init__(
        self,
        state: list[StateVar],
        inputs: dict[str, int],
        mem_shapes: dict[str, tuple[int, int]],
    ) -> None:
        self.state = state
        self.inputs = inputs
        # memory name -> (addr_width, data_width); words appear in `state`
        # under the names "mem[idx]".
        self.mem_shapes = mem_shapes
        self.mem_word_names = {
            f"{mem}[{addr}]"
            for mem, (addr_width, _dw) in mem_shapes.items()
            for addr in range(1 << addr_width)
        }
        # Memories with no write ports (ROMs); their words stay constant
        # even when the initial frame is otherwise unconstrained.
        self.constant_mems: set[str] = set()
        self._by_name = {var.name: var for var in state}

    def var(self, name: str) -> StateVar:
        return self._by_name[name]

    def cone_of_influence(self, roots: list[E.Expr]) -> set[str]:
        """State-variable names transitively needed to evaluate ``roots``
        across any number of steps (memory reads pull in the whole memory).
        """
        needed: set[str] = set()
        frontier: list[E.Expr] = list(roots)
        while frontier:
            exprs = frontier
            frontier = []
            names: set[str] = set()
            for node in E.walk(exprs):
                if isinstance(node, E.RegRead):
                    names.add(node.name)
                elif isinstance(node, E.MemRead):
                    addr_width, _dw = self.mem_shapes[node.mem]
                    names.update(
                        f"{node.mem}[{a}]" for a in range(1 << addr_width)
                    )
            for name in names - needed:
                needed.add(name)
                frontier.append(self._by_name[name].next)
        return needed

    @classmethod
    def from_module(cls, module: Module) -> "TransitionSystem":
        module.validate()
        state: list[StateVar] = []
        constant_mems: set[str] = set()
        for name, reg in module.registers.items():
            hold = E.reg_read(name, reg.width)
            state.append(
                StateVar(
                    name=name,
                    width=reg.width,
                    init=reg.init,
                    next=E.mux(reg.enable, reg.next, hold),
                )
            )
        mem_shapes: dict[str, tuple[int, int]] = {}
        for name, memory in module.memories.items():
            mem_shapes[name] = (memory.addr_width, memory.data_width)
            if not memory.write_ports:
                # A ROM: constant in every reachable state, so it is kept
                # constant even in induction frames (sound and much cheaper).
                constant_mems.add(name)
            for addr in range(memory.size):
                hold: E.Expr = E.mem_read(
                    name, E.const(memory.addr_width, addr), memory.data_width
                )
                value = hold
                for port in memory.write_ports:
                    selected = E.band(
                        port.enable, E.eq(port.addr, E.const(memory.addr_width, addr))
                    )
                    value = E.mux(selected, port.data, value)
                state.append(
                    StateVar(
                        name=f"{name}[{addr}]",
                        width=memory.data_width,
                        init=memory.init.get(addr, 0),
                        next=value,
                    )
                )
        system = cls(state, dict(module.inputs), mem_shapes)
        system.constant_mems = constant_mems
        return system


@dataclass
class Frame:
    """Literal vectors of one unrolled time frame."""

    regs: dict[str, Vec]
    mems: dict[str, list[Vec]]
    inputs: dict[str, Vec]


@dataclass
class Counterexample:
    """A concrete trace violating a property."""

    length: int
    states: list[dict[str, int]] = field(default_factory=list)
    inputs: list[dict[str, int]] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"counterexample of length {self.length}:"]
        for t, (state, ins) in enumerate(zip(self.states, self.inputs)):
            lines.append(f"  frame {t}: inputs={ins} state={state}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of a BMC or induction run."""

    holds: bool | None  # True = proved/unviolated in bound, False = cex, None = unknown
    bound: int
    method: str
    counterexample: Counterexample | None = None

    def __bool__(self) -> bool:
        return bool(self.holds)


class Unroller:
    """Unrolls a transition system into an AIG frame by frame.

    ``support`` restricts the tracked state to a cone of influence: only
    the listed state variables are materialised per frame (the set must be
    closed under next-state dependencies, as produced by
    :meth:`TransitionSystem.cone_of_influence`).
    """

    def __init__(
        self,
        system: TransitionSystem,
        aig: Aig | None = None,
        support: set[str] | None = None,
    ) -> None:
        self.system = system
        self.aig = aig if aig is not None else Aig()
        self.frames: list[Frame] = []
        self.vars = [
            var
            for var in system.state
            if support is None or var.name in support
        ]
        self._tracked = {var.name for var in self.vars}

    def _split_state(self, vecs: Mapping[str, Vec], input_vecs: dict[str, Vec]) -> Frame:
        regs: dict[str, Vec] = {}
        mems: dict[str, list[Vec]] = {}
        for mem, (addr_width, _dw) in self.system.mem_shapes.items():
            if f"{mem}[0]" not in self._tracked:
                continue
            mems[mem] = [list(vecs[f"{mem}[{a}]"]) for a in range(1 << addr_width)]
        for var in self.vars:
            if var.name not in self.system.mem_word_names:
                regs[var.name] = list(vecs[var.name])
        return Frame(regs=regs, mems=mems, inputs=input_vecs)

    def add_initial_frame(self, free: bool) -> Frame:
        """Frame 0: constants from reset values, or fresh variables.

        ROM contents stay constant even in free frames — they are constant
        in every reachable state, so this is a sound strengthening.
        """
        vecs: dict[str, Vec] = {}
        for var in self.vars:
            rom = (
                "[" in var.name
                and var.name.split("[")[0] in self.system.constant_mems
            )
            if free and not rom:
                vecs[var.name] = fresh_vec(self.aig, var.width)
            else:
                vecs[var.name] = [
                    1 if (var.init >> i) & 1 else 0 for i in range(var.width)
                ]
        frame = self._split_state(vecs, self._fresh_inputs())
        self.frames.append(frame)
        return frame

    def _fresh_inputs(self) -> dict[str, Vec]:
        return {
            name: fresh_vec(self.aig, width)
            for name, width in self.system.inputs.items()
        }

    def _blaster(self, frame: Frame) -> BitBlaster:
        return BitBlaster(
            self.aig, regs=frame.regs, inputs=frame.inputs, mem_words=frame.mems
        )

    def add_step(self) -> Frame:
        """Compute frame t+1 from the last frame."""
        current = self.frames[-1]
        blaster = self._blaster(current)
        vecs = {var.name: blaster.blast(var.next) for var in self.vars}
        frame = self._split_state(vecs, self._fresh_inputs())
        self.frames.append(frame)
        return frame

    def blast_in_frame(self, index: int, expression: E.Expr) -> Vec:
        """Evaluate an expression over the state/inputs of frame ``index``."""
        return self._blaster(self.frames[index]).blast(expression)

    def bit_in_frame(self, index: int, expression: E.Expr) -> int:
        if expression.width != 1:
            raise ValueError("property expressions must be 1 bit wide")
        return self.blast_in_frame(index, expression)[0]

    def decode(self, model: Mapping[int, bool], frames: int) -> Counterexample:
        """Decode a SAT model into a concrete trace.

        The model only constrains variables in the property's cone; nodes
        that folded out of it (don't-care bits) would decode arbitrarily.
        To make the trace *replayable* on the simulator, state values are
        recomputed by evaluating the AIG from the model's input assignment
        — the ground truth every downstream node follows.
        """
        assignment = {lit >> 1: bool(model.get(lit >> 1, False)) for lit in self.aig._inputs}

        # one evaluation pass covers every literal of every frame
        wanted: list[int] = []
        index: dict[int, int] = {}

        def want(lit: int) -> None:
            if lit not in index:
                index[lit] = len(wanted)
                wanted.append(lit)

        for t in range(frames):
            frame = self.frames[t]
            for vec in frame.regs.values():
                for lit in vec:
                    want(lit)
            for words in frame.mems.values():
                for word in words:
                    for lit in word:
                        want(lit)
            for vec in frame.inputs.values():
                for lit in vec:
                    want(lit)
        values = self.aig.evaluate(assignment, wanted)

        def vec_of(vec: Vec) -> int:
            return sum(1 << i for i, lit in enumerate(vec) if values[index[lit]])

        cex = Counterexample(length=frames)
        for t in range(frames):
            frame = self.frames[t]
            state = {name: vec_of(vec) for name, vec in frame.regs.items()}
            for mem, words in frame.mems.items():
                for addr, word in enumerate(words):
                    state[f"{mem}[{addr}]"] = vec_of(word)
            ins = {name: vec_of(vec) for name, vec in frame.inputs.items()}
            cex.states.append(state)
            cex.inputs.append(ins)
        return cex


def _solve(
    aig: Aig, roots: Sequence[int], max_conflicts: int | None = None
) -> tuple[bool | None, dict[int, bool]]:
    """SAT-check the conjunction of AIG literals ``roots``.

    ``max_conflicts`` is a deterministic step budget: the solver gives up
    with verdict ``None`` once it is exceeded, so a caller can bound the
    work of a single obligation instead of hanging on a hard instance.
    """
    folded = aig.and_many(list(roots))
    if folded == 0:
        return False, {}
    if folded == 1:
        return True, {}
    clauses, (root_lit,) = to_cnf(aig, [folded])
    solver = Solver()
    solver.add_clauses(clauses)
    solver.add_clause([root_lit])
    result = solver.solve(max_conflicts=max_conflicts)
    return result.satisfiable, result.model


def bmc(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    bound: int,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
) -> CheckResult:
    """Check that 1-bit ``prop`` holds in every frame 0..bound from reset.

    ``assume`` expressions are constrained to 1 in every frame (environment
    assumptions, e.g. "no external stall").  ``max_conflicts`` bounds each
    SAT call; an exhausted budget returns ``holds=None``.
    """
    system = (
        module_or_system
        if isinstance(module_or_system, TransitionSystem)
        else TransitionSystem.from_module(module_or_system)
    )
    support = system.cone_of_influence([prop, *assume])
    unroller = Unroller(system, support=support)
    unroller.add_initial_frame(free=False)
    aig = unroller.aig
    assumptions: list[int] = []
    for t in range(bound + 1):
        if t > 0:
            unroller.add_step()
        assumptions.extend(
            unroller.bit_in_frame(t, assumption) for assumption in assume
        )
        bad = aig.neg(unroller.bit_in_frame(t, prop))
        sat, model = _solve(aig, assumptions + [bad], max_conflicts=max_conflicts)
        if sat:
            return CheckResult(
                holds=False,
                bound=t,
                method="bmc",
                counterexample=unroller.decode(model, t + 1),
            )
        if sat is None:
            return CheckResult(holds=None, bound=t, method="bmc")
    return CheckResult(holds=True, bound=bound, method="bmc")


def k_induction(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    k: int = 1,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
) -> CheckResult:
    """Prove ``prop`` invariant by k-induction.

    * base: ``prop`` holds in frames 0..k-1 from the initial state;
    * step: from any state chain of length k in which ``prop`` (and the
      assumptions) hold, ``prop`` holds in frame k.

    Returns ``holds=True`` only if both checks pass.  A failing base check
    returns the concrete counterexample; a failing step check returns
    ``holds=None`` (the property may still hold but is not k-inductive).
    Assumptions must themselves be invariants for the result to be sound.
    """
    system = (
        module_or_system
        if isinstance(module_or_system, TransitionSystem)
        else TransitionSystem.from_module(module_or_system)
    )
    base = bmc(system, prop, bound=k - 1, assume=assume, max_conflicts=max_conflicts)
    if base.holds is not True:
        return CheckResult(
            holds=base.holds,
            bound=base.bound,
            method="k-induction(base)",
            counterexample=base.counterexample,
        )

    support = system.cone_of_influence([prop, *assume])
    unroller = Unroller(system, support=support)
    unroller.add_initial_frame(free=True)
    aig = unroller.aig
    constraints: list[int] = []
    for t in range(k):
        constraints.append(unroller.bit_in_frame(t, prop))
        constraints.extend(
            unroller.bit_in_frame(t, assumption) for assumption in assume
        )
        unroller.add_step()
    constraints.extend(
        unroller.bit_in_frame(k, assumption) for assumption in assume
    )
    bad = aig.neg(unroller.bit_in_frame(k, prop))
    sat, _model = _solve(aig, constraints + [bad], max_conflicts=max_conflicts)
    if sat is False:
        return CheckResult(holds=True, bound=k, method="k-induction")
    return CheckResult(holds=None, bound=k, method="k-induction(step)")


def prove(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    max_k: int = 4,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
) -> CheckResult:
    """Try k-induction with increasing k until the step check passes or
    ``max_k`` is exhausted."""
    last = CheckResult(holds=None, bound=0, method="k-induction")
    for k in range(1, max_k + 1):
        last = k_induction(
            module_or_system, prop, k=k, assume=assume, max_conflicts=max_conflicts
        )
        if last.holds is not None:
            return last
    return last
