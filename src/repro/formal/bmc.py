"""Bounded model checking and k-induction over HDL modules.

A :class:`TransitionSystem` is extracted from a :class:`repro.hdl.Module`:
registers and (expanded) memory words form the state, and each state
element's next-value is a single expression — ``mux(enable, next, hold)``
for registers, a write-port fold for memory words.

:func:`bmc` searches for a property violation within ``k`` steps from the
initial state; :func:`k_induction` proves a property invariant by the
standard base + inductive-step scheme.  Both bit-blast the unrolling to CNF
and use the CDCL solver from :mod:`repro.formal.sat`.

By default the hot path is **incremental** end-to-end: an
:class:`IncrementalUnroller` owns one AIG and one solver for a whole query,
each new time frame Tseitin-encodes only its own new logic
(:class:`repro.formal.aig.CnfEmitter`), and the property-at-step-``t``
literal is activated through a solver *assumption*, so ``bmc``,
``k_induction`` and ``prove`` extend the same unrolling from bound ``k`` to
``k+1`` — clause/activity/phase state included — instead of restarting.
Before any unrolling, the transition system is sliced to the property's
cone of influence at state-variable granularity (individual memory words
for constant-address reads).  Pass ``incremental=False`` to run the
one-shot engines instead; both must agree on every verdict (the
differential suite in ``tests/test_bmc_incremental.py`` holds them to it).

This engine is what discharges the hardware-level proof obligations the
transformation tool emits (the role PVS played for the paper's authors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..hdl import expr as E
from ..hdl.netlist import Module
from .aig import (
    FALSE,
    TRUE,
    Aig,
    BitBlaster,
    CnfEmitter,
    Vec,
    fresh_vec,
    sweep,
    to_cnf,
)
from .sat import SatResult, Solver

# Bumped whenever the unrolling/encoding strategy could alter a verdict or
# its cost profile; joins SOLVER_VERSION in every obligation fingerprint so
# cached verdicts from an older engine can never alias the new one.
# 3: grouped discharge over one shared unrolling (repro.formal.shared) —
# verdict-equivalent by construction, but the cost profile of every
# invariant obligation changed, so per-obligation entries self-evict.
# 4: width-parametric family verdicts (repro.analysis) — family-certified
# obligations may be served from a family cache keyed by width-erased
# templates, so the universe of entries a fingerprint can alias changed.
ENGINE_VERSION = 4


@dataclass(frozen=True)
class StateVar:
    """One element of the transition system's state vector."""

    name: str
    width: int
    init: int
    next: E.Expr


class TransitionSystem:
    """A flat synchronous transition system extracted from a module."""

    def __init__(
        self,
        state: list[StateVar],
        inputs: dict[str, int],
        mem_shapes: dict[str, tuple[int, int]],
    ) -> None:
        self.state = state
        self.inputs = inputs
        # memory name -> (addr_width, data_width); words appear in `state`
        # under the names "mem[idx]".
        self.mem_shapes = mem_shapes
        self.mem_word_names = {
            f"{mem}[{addr}]"
            for mem, (addr_width, _dw) in mem_shapes.items()
            for addr in range(1 << addr_width)
        }
        # Memories with no write ports (ROMs); their words stay constant
        # even when the initial frame is otherwise unconstrained.
        self.constant_mems: set[str] = set()
        self._by_name = {var.name: var for var in state}

    def var(self, name: str) -> StateVar:
        return self._by_name[name]

    def cone_of_influence(self, roots: list[E.Expr]) -> set[str]:
        """State-variable names transitively needed to evaluate ``roots``
        across any number of steps.

        The slice is at *variable* granularity: a memory read at a constant
        address only pulls in that word, so properties over individual
        memory locations do not drag the whole memory into every frame.  A
        symbolic (non-constant) read still needs the full memory.
        """
        needed: set[str] = set()
        full_mems: set[str] = set()
        frontier: list[E.Expr] = list(roots)
        while frontier:
            exprs = frontier
            frontier = []
            names: set[str] = set()
            for node in E.walk(exprs):
                if isinstance(node, E.RegRead):
                    names.add(node.name)
                elif isinstance(node, E.MemRead):
                    if isinstance(node.addr, E.Const):
                        names.add(f"{node.mem}[{node.addr.value}]")
                    elif node.mem not in full_mems:
                        full_mems.add(node.mem)
                        addr_width, _dw = self.mem_shapes[node.mem]
                        names.update(
                            f"{node.mem}[{a}]" for a in range(1 << addr_width)
                        )
            for name in names - needed:
                needed.add(name)
                frontier.append(self._by_name[name].next)
        return needed

    @classmethod
    def from_module(cls, module: Module) -> "TransitionSystem":
        module.validate()
        state: list[StateVar] = []
        constant_mems: set[str] = set()
        for name, reg in module.registers.items():
            hold = E.reg_read(name, reg.width)
            state.append(
                StateVar(
                    name=name,
                    width=reg.width,
                    init=reg.init,
                    next=E.mux(reg.enable, reg.next, hold),
                )
            )
        mem_shapes: dict[str, tuple[int, int]] = {}
        for name, memory in module.memories.items():
            mem_shapes[name] = (memory.addr_width, memory.data_width)
            if not memory.write_ports:
                # A ROM: constant in every reachable state, so it is kept
                # constant even in induction frames (sound and much cheaper).
                constant_mems.add(name)
            for addr in range(memory.size):
                hold: E.Expr = E.mem_read(
                    name, E.const(memory.addr_width, addr), memory.data_width
                )
                value = hold
                for port in memory.write_ports:
                    selected = E.band(
                        port.enable, E.eq(port.addr, E.const(memory.addr_width, addr))
                    )
                    value = E.mux(selected, port.data, value)
                state.append(
                    StateVar(
                        name=f"{name}[{addr}]",
                        width=memory.data_width,
                        init=memory.init.get(addr, 0),
                        next=value,
                    )
                )
        system = cls(state, dict(module.inputs), mem_shapes)
        system.constant_mems = constant_mems
        return system


@dataclass
class Frame:
    """Literal vectors of one unrolled time frame.

    ``mems`` maps memory name -> {address: vector}; cone-of-influence
    slicing can leave it sparse (only the addressed words materialised).
    """

    regs: dict[str, Vec]
    mems: dict[str, dict[int, Vec]]
    inputs: dict[str, Vec]


@dataclass
class Counterexample:
    """A concrete trace violating a property."""

    length: int
    states: list[dict[str, int]] = field(default_factory=list)
    inputs: list[dict[str, int]] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"counterexample of length {self.length}:"]
        for t, (state, ins) in enumerate(zip(self.states, self.inputs)):
            lines.append(f"  frame {t}: inputs={ins} state={state}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Outcome of a BMC or induction run.

    ``conflicts`` and ``frames`` profile the run: total solver conflicts
    across every SAT call the query made, and the peak number of unrolled
    time frames it materialised.
    """

    holds: bool | None  # True = proved/unviolated in bound, False = cex, None = unknown
    bound: int
    method: str
    counterexample: Counterexample | None = None
    conflicts: int = 0
    frames: int = 0

    def __bool__(self) -> bool:
        return bool(self.holds)


class Unroller:
    """Unrolls a transition system into an AIG frame by frame.

    ``support`` restricts the tracked state to a cone of influence: only
    the listed state variables are materialised per frame (the set must be
    closed under next-state dependencies, as produced by
    :meth:`TransitionSystem.cone_of_influence`).
    """

    def __init__(
        self,
        system: TransitionSystem,
        aig: Aig | None = None,
        support: set[str] | None = None,
    ) -> None:
        self.system = system
        self.aig = aig if aig is not None else Aig()
        self.frames: list[Frame] = []
        self.vars = [
            var
            for var in system.state
            if support is None or var.name in support
        ]
        self._tracked = {var.name for var in self.vars}

    def _split_state(self, vecs: Mapping[str, Vec], input_vecs: dict[str, Vec]) -> Frame:
        regs: dict[str, Vec] = {}
        mems: dict[str, dict[int, Vec]] = {}
        for var in self.vars:
            if var.name in self.system.mem_word_names:
                mem, index = var.name[:-1].split("[")
                mems.setdefault(mem, {})[int(index)] = list(vecs[var.name])
            else:
                regs[var.name] = list(vecs[var.name])
        return Frame(regs=regs, mems=mems, inputs=input_vecs)

    def add_initial_frame(self, free: bool) -> Frame:
        """Frame 0: constants from reset values, or fresh variables.

        ROM contents stay constant even in free frames — they are constant
        in every reachable state, so this is a sound strengthening.
        """
        vecs: dict[str, Vec] = {}
        for var in self.vars:
            rom = (
                "[" in var.name
                and var.name.split("[")[0] in self.system.constant_mems
            )
            if free and not rom:
                vecs[var.name] = fresh_vec(self.aig, var.width)
            else:
                vecs[var.name] = [
                    1 if (var.init >> i) & 1 else 0 for i in range(var.width)
                ]
        frame = self._split_state(vecs, self._fresh_inputs())
        self.frames.append(frame)
        return frame

    def _fresh_inputs(self) -> dict[str, Vec]:
        return {
            name: fresh_vec(self.aig, width)
            for name, width in self.system.inputs.items()
        }

    def _blaster(self, frame: Frame) -> BitBlaster:
        return BitBlaster(
            self.aig, regs=frame.regs, inputs=frame.inputs, mem_words=frame.mems
        )

    def add_step(self) -> Frame:
        """Compute frame t+1 from the last frame."""
        current = self.frames[-1]
        blaster = self._blaster(current)
        vecs = {var.name: blaster.blast(var.next) for var in self.vars}
        frame = self._split_state(vecs, self._fresh_inputs())
        self.frames.append(frame)
        return frame

    def blast_in_frame(self, index: int, expression: E.Expr) -> Vec:
        """Evaluate an expression over the state/inputs of frame ``index``."""
        return self._blaster(self.frames[index]).blast(expression)

    def bit_in_frame(self, index: int, expression: E.Expr) -> int:
        if expression.width != 1:
            raise ValueError("property expressions must be 1 bit wide")
        return self.blast_in_frame(index, expression)[0]

    def decode(self, model: Mapping[int, bool], frames: int) -> Counterexample:
        """Decode a SAT model into a concrete trace.

        The model only constrains variables in the property's cone; nodes
        that folded out of it (don't-care bits) would decode arbitrarily.
        To make the trace *replayable* on the simulator, state values are
        recomputed by evaluating the AIG from the model's input assignment
        — the ground truth every downstream node follows.
        """
        assignment = {lit >> 1: bool(model.get(lit >> 1, False)) for lit in self.aig._inputs}

        # one evaluation pass covers every literal of every frame
        wanted: list[int] = []
        index: dict[int, int] = {}

        def want(lit: int) -> None:
            if lit not in index:
                index[lit] = len(wanted)
                wanted.append(lit)

        for t in range(frames):
            frame = self.frames[t]
            for vec in frame.regs.values():
                for lit in vec:
                    want(lit)
            for words in frame.mems.values():
                for word in words.values():
                    for lit in word:
                        want(lit)
            for vec in frame.inputs.values():
                for lit in vec:
                    want(lit)
        values = self.aig.evaluate(assignment, wanted)

        def vec_of(vec: Vec) -> int:
            return sum(1 << i for i, lit in enumerate(vec) if values[index[lit]])

        cex = Counterexample(length=frames)
        for t in range(frames):
            frame = self.frames[t]
            state = {name: vec_of(vec) for name, vec in frame.regs.items()}
            for mem, words in frame.mems.items():
                for addr, word in sorted(words.items()):
                    state[f"{mem}[{addr}]"] = vec_of(word)
            ins = {name: vec_of(vec) for name, vec in frame.inputs.items()}
            cex.states.append(state)
            cex.inputs.append(ins)
        return cex


class IncrementalUnroller(Unroller):
    """An unrolling wired straight into one persistent SAT solver.

    Owns a :class:`repro.formal.sat.Solver` and a
    :class:`repro.formal.aig.CnfEmitter` for its whole lifetime: each new
    frame bit-blasts only its own transition logic, and only the AND nodes
    in the cone of an asserted/assumed literal are Tseitin-encoded — once.
    Learned clauses, variable activities and saved phases therefore carry
    over from bound ``k`` to bound ``k+1``.

    With ``sweep_frames``, each new frame's state vectors are rewritten by
    the fraig-style :func:`repro.formal.aig.sweep` pass, so nodes proved
    equal to an older node (or a constant) collapse before they ever reach
    the solver.
    """

    def __init__(
        self,
        system: TransitionSystem,
        support: set[str] | None = None,
        free_init: bool = False,
        sweep_frames: bool = False,
    ) -> None:
        super().__init__(system, support=support)
        self.solver = Solver()
        self.emitter = CnfEmitter(self.aig, self.solver)
        self.free_init = free_init
        self.sweep_frames = sweep_frames
        self.swept = 0  # nodes merged away by the sweep pass, cumulative

    def ensure_frames(self, count: int) -> None:
        """Materialise frames 0..count-1 (no-op for already-built frames)."""
        if count > 0 and not self.frames:
            self.add_initial_frame(free=self.free_init)
        while len(self.frames) < count:
            self.add_step()

    def add_step(self) -> Frame:
        frame = super().add_step()
        if self.sweep_frames:
            roots = [lit for vec in frame.regs.values() for lit in vec]
            for words in frame.mems.values():
                for word in words.values():
                    roots.extend(word)
            result = sweep(self.aig, roots)
            if result.merged:
                self.swept += result.merged
                for name, vec in frame.regs.items():
                    frame.regs[name] = result.apply_vec(vec)
                for words in frame.mems.values():
                    for addr in list(words):
                        words[addr] = result.apply_vec(words[addr])
        return frame

    def literal(self, index: int, expression: E.Expr) -> int:
        """Solver literal for a 1-bit expression in frame ``index``,
        encoding its cone into the solver on first use."""
        return self.emitter.encode(self.bit_in_frame(index, expression))

    def assert_unit(self, index: int, expression: E.Expr) -> None:
        """Permanently constrain a 1-bit expression to hold in a frame."""
        self.solver.add_clause([self.literal(index, expression)])

    def decode_solver_model(self, model: Mapping[int, bool], frames: int) -> Counterexample:
        return self.decode(self.emitter.model_to_aig(model), frames)


class IncrementalChecker:
    """Shared incremental engine behind :func:`bmc`, :func:`k_induction`
    and :func:`prove`.

    Owns up to two unrollings over the property's cone-of-influence slice —
    one from reset for BMC/base queries, one with a free initial frame for
    induction-step queries.  Queries at increasing bounds *extend* the
    existing unrollings instead of restarting:

    * the "property violated at frame t" literal is activated via a solver
      assumption, so it can be retracted when moving to t+1;
    * once frame t is proved violation-free, ``prop``@t is asserted as a
      unit clause (it is implied by the database, so this only strengthens
      later searches);
    * environment assumptions are unit-asserted per frame (they are
      required to be invariants);
    * ``prove``'s growing induction-step checks reuse one free-init
      unrolling, its frames 0..k-1 constrained by the induction hypothesis.

    ``conflicts`` accumulates solver conflicts over every query and
    ``frames`` reports the peak unrolled depth — surfaced per obligation by
    ``repro discharge --profile``.
    """

    def __init__(
        self,
        module_or_system: Module | TransitionSystem,
        prop: E.Expr,
        assume: Sequence[E.Expr] = (),
        max_conflicts: int | None = None,
        interrupt: Callable[[], bool] | None = None,
        sweep_frames: bool = False,
    ) -> None:
        system = (
            module_or_system
            if isinstance(module_or_system, TransitionSystem)
            else TransitionSystem.from_module(module_or_system)
        )
        self.system = system
        self.prop = prop
        self.assume = tuple(assume)
        self.max_conflicts = max_conflicts
        self.interrupt = interrupt
        self.support = system.cone_of_influence([prop, *assume])
        self._sweep_frames = sweep_frames
        self._base = IncrementalUnroller(
            system, support=self.support, free_init=False, sweep_frames=sweep_frames
        )
        self._step: IncrementalUnroller | None = None
        self._base_proved = -1  # highest frame proved violation-free
        self._step_hyp = -1  # step frames 0..n carry the induction hypothesis
        self._step_assumed = -1  # step frames 0..n carry the assumptions
        self.conflicts = 0

    @property
    def frames(self) -> int:
        peak = len(self._base.frames)
        if self._step is not None:
            peak = max(peak, len(self._step.frames))
        return peak

    def _query(self, unroller: IncrementalUnroller, assumptions: list[int]) -> SatResult:
        result = unroller.solver.solve(
            assumptions=assumptions,
            max_conflicts=self.max_conflicts,
            interrupt=self.interrupt,
        )
        self.conflicts += result.conflicts
        return result

    def _result(
        self,
        holds: bool | None,
        bound: int,
        method: str,
        counterexample: Counterexample | None = None,
    ) -> CheckResult:
        return CheckResult(
            holds=holds,
            bound=bound,
            method=method,
            counterexample=counterexample,
            conflicts=self.conflicts,
            frames=self.frames,
        )

    def bmc_to(self, bound: int) -> CheckResult:
        """Check ``prop`` in frames 0..bound from reset, extending any
        previously checked prefix."""
        for t in range(self._base_proved + 1, bound + 1):
            self._base.ensure_frames(t + 1)
            for assumption in self.assume:
                self._base.assert_unit(t, assumption)
            good = self._base.literal(t, self.prop)
            result = self._query(self._base, [-good])
            if result.satisfiable is True:
                return self._result(
                    False,
                    t,
                    "bmc",
                    counterexample=self._base.decode_solver_model(
                        result.model, t + 1
                    ),
                )
            if result.satisfiable is None:
                return self._result(None, t, "bmc")
            self._base.solver.add_clause([good])  # implied; strengthens t+1..
            self._base_proved = t
        return self._result(True, bound, "bmc")

    def induction_step(self, k: int) -> bool | None:
        """The k-induction step check: from any chain of ``k`` frames
        satisfying ``prop`` and the assumptions, ``prop`` holds in frame
        ``k``.  Returns True when it passes, None when it fails or the
        budget runs out.  ``k`` must not decrease across calls on one
        checker (earlier hypotheses stay asserted)."""
        if k - 1 < self._step_hyp:
            raise ValueError("induction-step bounds must not decrease")
        if self._step is None:
            self._step = IncrementalUnroller(
                self.system,
                support=self.support,
                free_init=True,
                sweep_frames=self._sweep_frames,
            )
        step = self._step
        step.ensure_frames(k + 1)
        for t in range(self._step_hyp + 1, k):
            step.assert_unit(t, self.prop)
        self._step_hyp = max(self._step_hyp, k - 1)
        for t in range(self._step_assumed + 1, k + 1):
            for assumption in self.assume:
                step.assert_unit(t, assumption)
        self._step_assumed = max(self._step_assumed, k)
        result = self._query(step, [-step.literal(k, self.prop)])
        if result.satisfiable is False:
            return True
        return None

    def k_induction(self, k: int) -> CheckResult:
        base = self.bmc_to(k - 1)
        if base.holds is not True:
            return self._result(
                base.holds, base.bound, "k-induction(base)", base.counterexample
            )
        if self.induction_step(k) is True:
            return self._result(True, k, "k-induction")
        return self._result(None, k, "k-induction(step)")

    def prove(self, max_k: int = 4) -> CheckResult:
        last = self._result(None, 0, "k-induction")
        for k in range(1, max_k + 1):
            last = self.k_induction(k)
            if last.holds is not None:
                return last
        return last


def _solve(
    aig: Aig,
    roots: Sequence[int],
    max_conflicts: int | None = None,
    interrupt: Callable[[], bool] | None = None,
) -> SatResult:
    """One-shot SAT check of the conjunction of AIG literals ``roots``.

    ``max_conflicts`` is a deterministic step budget: the solver gives up
    with verdict ``None`` once it is exceeded, so a caller can bound the
    work of a single obligation instead of hanging on a hard instance.
    """
    folded = aig.and_many(list(roots))
    if folded == 0:
        return SatResult(satisfiable=False)
    if folded == 1:
        return SatResult(satisfiable=True)
    clauses, (root_lit,) = to_cnf(aig, [folded])
    solver = Solver()
    solver.add_clauses(clauses)
    solver.add_clause([root_lit])
    return solver.solve(max_conflicts=max_conflicts, interrupt=interrupt)


def bmc(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    bound: int,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
    interrupt: Callable[[], bool] | None = None,
    incremental: bool = True,
    sweep_frames: bool = False,
) -> CheckResult:
    """Check that 1-bit ``prop`` holds in every frame 0..bound from reset.

    ``assume`` expressions are constrained to 1 in every frame (environment
    assumptions, e.g. "no external stall").  ``max_conflicts`` bounds each
    SAT call; an exhausted budget returns ``holds=None``.  ``interrupt`` is
    polled during each call and aborts with ``holds=None``.

    ``incremental`` (default) runs the single-solver engine; pass False for
    the one-shot-per-bound engine (same verdicts, used differentially).
    """
    if incremental:
        checker = IncrementalChecker(
            module_or_system,
            prop,
            assume=assume,
            max_conflicts=max_conflicts,
            interrupt=interrupt,
            sweep_frames=sweep_frames,
        )
        return checker.bmc_to(bound)
    system = (
        module_or_system
        if isinstance(module_or_system, TransitionSystem)
        else TransitionSystem.from_module(module_or_system)
    )
    support = system.cone_of_influence([prop, *assume])
    unroller = Unroller(system, support=support)
    unroller.add_initial_frame(free=False)
    aig = unroller.aig
    assumptions: list[int] = []
    conflicts = 0
    for t in range(bound + 1):
        if t > 0:
            unroller.add_step()
        assumptions.extend(
            unroller.bit_in_frame(t, assumption) for assumption in assume
        )
        bad = aig.neg(unroller.bit_in_frame(t, prop))
        result = _solve(
            aig, assumptions + [bad], max_conflicts=max_conflicts, interrupt=interrupt
        )
        conflicts += result.conflicts
        if result.satisfiable is True:
            return CheckResult(
                holds=False,
                bound=t,
                method="bmc",
                counterexample=unroller.decode(result.model, t + 1),
                conflicts=conflicts,
                frames=len(unroller.frames),
            )
        if result.satisfiable is None:
            return CheckResult(
                holds=None, bound=t, method="bmc",
                conflicts=conflicts, frames=len(unroller.frames),
            )
    return CheckResult(
        holds=True, bound=bound, method="bmc",
        conflicts=conflicts, frames=len(unroller.frames),
    )


def bmc_bdd(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    bound: int,
    assume: Sequence[E.Expr] = (),
    max_nodes: int = 200_000,
) -> CheckResult:
    """Bounded reachability from reset, decided by BDDs instead of SAT.

    The unrolling is identical to :func:`bmc` (cone-of-influence slice,
    concrete initial frame, ROMs constant), but each frame's bad-state
    condition is evaluated as a BDD over the free primary inputs rather
    than handed to the CDCL solver.  With a concrete reset frame the only
    BDD variables are the unrolled inputs, so the diagram stays small on
    exactly the obligations where a SAT engine can get stuck — this is the
    independent-engine rung of the discharge degradation ladder.

    ``max_nodes`` caps the node table; exceeding it returns ``holds=None``
    with method ``bdd(node-limit)`` rather than thrashing.
    """
    from .bdd import Bdd

    system = (
        module_or_system
        if isinstance(module_or_system, TransitionSystem)
        else TransitionSystem.from_module(module_or_system)
    )
    support = system.cone_of_influence([prop, *assume])
    unroller = Unroller(system, support=support)
    unroller.add_initial_frame(free=False)
    # Blast every frame's property/assumption bits first: blasting appends
    # AND gates, and the BDD sweep below walks the finished gate list once.
    frame_assumes: list[list[int]] = []
    prop_lits: list[int] = []
    for t in range(bound + 1):
        if t > 0:
            unroller.add_step()
        frame_assumes.append(
            [unroller.bit_in_frame(t, assumption) for assumption in assume]
        )
        prop_lits.append(unroller.bit_in_frame(t, prop))

    aig = unroller.aig
    bdd = Bdd()
    # One BDD variable per AIG input, in allocation order; remember which
    # AIG variable each BDD variable stands for so a model can be decoded.
    node_of: dict[int, int] = {0: bdd.false}
    bdd_var_to_aig: list[int] = []
    for lit in aig._inputs:
        node_of[lit >> 1] = bdd.new_var()
        bdd_var_to_aig.append(lit >> 1)

    def lit_node(lit: int) -> int:
        base = node_of[lit >> 1]
        return bdd.not_(base) if lit & 1 else base

    def limited(bound_reached: int) -> CheckResult:
        return CheckResult(
            holds=None,
            bound=bound_reached,
            method="bdd(node-limit)",
            frames=len(unroller.frames),
        )

    for var, a, b in aig.ands:
        node_of[var] = bdd.and_(lit_node(a), lit_node(b))
        if len(bdd._nodes) > max_nodes:
            return limited(bound)

    env = bdd.true  # assumptions over frames 0..t, grown per frame
    for t in range(bound + 1):
        for lit in frame_assumes[t]:
            env = bdd.and_(env, lit_node(lit))
        bad = bdd.and_(env, bdd.not_(lit_node(prop_lits[t])))
        if len(bdd._nodes) > max_nodes:
            return limited(t)
        if bad != bdd.false:
            assignment = bdd.satisfy_one(bad)
            model = {
                bdd_var_to_aig[var]: value
                for var, value in (assignment or {}).items()
            }
            return CheckResult(
                holds=False,
                bound=t,
                method="bdd",
                counterexample=unroller.decode(model, t + 1),
                frames=len(unroller.frames),
            )
    return CheckResult(
        holds=True, bound=bound, method="bdd", frames=len(unroller.frames)
    )


def k_induction(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    k: int = 1,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
    interrupt: Callable[[], bool] | None = None,
    incremental: bool = True,
    sweep_frames: bool = False,
) -> CheckResult:
    """Prove ``prop`` invariant by k-induction.

    * base: ``prop`` holds in frames 0..k-1 from the initial state;
    * step: from any state chain of length k in which ``prop`` (and the
      assumptions) hold, ``prop`` holds in frame k.

    Returns ``holds=True`` only if both checks pass.  A failing base check
    returns the concrete counterexample; a failing step check returns
    ``holds=None`` (the property may still hold but is not k-inductive).
    Assumptions must themselves be invariants for the result to be sound.
    """
    if incremental:
        checker = IncrementalChecker(
            module_or_system,
            prop,
            assume=assume,
            max_conflicts=max_conflicts,
            interrupt=interrupt,
            sweep_frames=sweep_frames,
        )
        return checker.k_induction(k)
    system = (
        module_or_system
        if isinstance(module_or_system, TransitionSystem)
        else TransitionSystem.from_module(module_or_system)
    )
    base = bmc(
        system,
        prop,
        bound=k - 1,
        assume=assume,
        max_conflicts=max_conflicts,
        interrupt=interrupt,
        incremental=False,
    )
    if base.holds is not True:
        return CheckResult(
            holds=base.holds,
            bound=base.bound,
            method="k-induction(base)",
            counterexample=base.counterexample,
            conflicts=base.conflicts,
            frames=base.frames,
        )

    support = system.cone_of_influence([prop, *assume])
    unroller = Unroller(system, support=support)
    unroller.add_initial_frame(free=True)
    aig = unroller.aig
    constraints: list[int] = []
    for t in range(k):
        constraints.append(unroller.bit_in_frame(t, prop))
        constraints.extend(
            unroller.bit_in_frame(t, assumption) for assumption in assume
        )
        unroller.add_step()
    constraints.extend(
        unroller.bit_in_frame(k, assumption) for assumption in assume
    )
    bad = aig.neg(unroller.bit_in_frame(k, prop))
    result = _solve(
        aig, constraints + [bad], max_conflicts=max_conflicts, interrupt=interrupt
    )
    conflicts = base.conflicts + result.conflicts
    frames = max(base.frames, len(unroller.frames))
    if result.satisfiable is False:
        return CheckResult(
            holds=True, bound=k, method="k-induction",
            conflicts=conflicts, frames=frames,
        )
    return CheckResult(
        holds=None, bound=k, method="k-induction(step)",
        conflicts=conflicts, frames=frames,
    )


def prove(
    module_or_system: Module | TransitionSystem,
    prop: E.Expr,
    max_k: int = 4,
    assume: Sequence[E.Expr] = (),
    max_conflicts: int | None = None,
    interrupt: Callable[[], bool] | None = None,
    incremental: bool = True,
    sweep_frames: bool = False,
) -> CheckResult:
    """Try k-induction with increasing k until the step check passes or
    ``max_k`` is exhausted.

    The incremental engine (default) shares one base and one step unrolling
    across all values of k — each iteration adds one frame and one solver
    call instead of redoing everything from scratch.
    """
    if incremental:
        checker = IncrementalChecker(
            module_or_system,
            prop,
            assume=assume,
            max_conflicts=max_conflicts,
            interrupt=interrupt,
            sweep_frames=sweep_frames,
        )
        return checker.prove(max_k)
    last = CheckResult(holds=None, bound=0, method="k-induction")
    for k in range(1, max_k + 1):
        last = k_induction(
            module_or_system,
            prop,
            k=k,
            assume=assume,
            max_conflicts=max_conflicts,
            interrupt=interrupt,
            incremental=False,
        )
        if last.holds is not None:
            return last
    return last
