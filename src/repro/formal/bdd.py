"""Reduced Ordered Binary Decision Diagrams.

A compact ROBDD package (Bryant 1986, the paper's reference [4]) used as a
second, independent engine for combinational equivalence: two circuits are
equivalent iff their BDDs are the same node.  The manager interns nodes in a
unique table and memoizes ``ite``, so equality is pointer equality.
"""

from __future__ import annotations

from typing import Mapping, Sequence


class Bdd:
    """A BDD manager with a fixed growing variable order.

    Nodes are integers: 0 = FALSE, 1 = TRUE, others index the manager's node
    table.  Each internal node is ``(var, low, high)`` where ``low`` is the
    cofactor for var=0.
    """

    def __init__(self) -> None:
        self.false = 0
        self.true = 1
        # node id -> (var, low, high); ids 0/1 are terminals
        self._nodes: list[tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self.num_vars = 0

    def new_var(self) -> int:
        """Allocate the next variable (later in the order) and return the
        BDD node for it."""
        var = self.num_vars
        self.num_vars += 1
        return self._mk(var, self.false, self.true)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def _top_var(self, *nodes: int) -> int:
        variables = [self._nodes[n][0] for n in nodes if n > 1]
        return min(variables)

    def _cofactor(self, node: int, var: int, value: int) -> int:
        if node <= 1:
            return node
        node_var, low, high = self._nodes[node]
        if node_var != var:
            return node
        return high if value else low

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: f ? g : h."""
        if f == self.true:
            return g
        if f == self.false:
            return h
        if g == h:
            return g
        if g == self.true and h == self.false:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        var = self._top_var(f, g, h)
        low = self.ite(
            self._cofactor(f, var, 0),
            self._cofactor(g, var, 0),
            self._cofactor(h, var, 0),
        )
        high = self.ite(
            self._cofactor(f, var, 1),
            self._cofactor(g, var, 1),
            self._cofactor(h, var, 1),
        )
        result = self._mk(var, low, high)
        self._ite_cache[key] = result
        return result

    # -- boolean operators -----------------------------------------------------

    def not_(self, f: int) -> int:
        return self.ite(f, self.false, self.true)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.false)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.true, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.true)

    # -- queries -----------------------------------------------------------------

    def is_tautology(self, f: int) -> bool:
        return f == self.true

    def equivalent(self, f: int, g: int) -> bool:
        """Equivalence is pointer equality on a shared manager."""
        return f == g

    def satisfy_one(self, f: int) -> dict[int, bool] | None:
        """Return one satisfying assignment (var index -> bool), or None."""
        if f == self.false:
            return None
        assignment: dict[int, bool] = {}
        node = f
        while node > 1:
            var, low, high = self._nodes[node]
            if low != self.false:
                assignment[var] = False
                node = low
            else:
                assignment[var] = True
                node = high
        return assignment

    def count_sat(self, f: int, var_count: int | None = None) -> int:
        """Number of satisfying assignments over ``var_count`` variables."""
        total_vars = self.num_vars if var_count is None else var_count
        memo: dict[int, int] = {}

        def count(node: int) -> tuple[int, int]:
            """Returns (count, level) where count is over vars below level."""
            if node == self.false:
                return 0, total_vars
            if node == self.true:
                return 1, total_vars
            if node in memo:
                var = self._nodes[node][0]
                return memo[node], var
            var, low, high = self._nodes[node]
            lc, ll = count(low)
            hc, hl = count(high)
            result = lc * (1 << (ll - var - 1)) + hc * (1 << (hl - var - 1))
            memo[node] = result
            return result, var

        count_value, level = count(f)
        return count_value * (1 << level)

    def evaluate(self, f: int, assignment: Mapping[int, bool]) -> bool:
        node = f
        while node > 1:
            var, low, high = self._nodes[node]
            node = high if assignment.get(var, False) else low
        return node == self.true

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen: set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= 1 or node in seen:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen)


def bdd_from_aig(
    bdd: Bdd, aig_ands: Sequence[tuple[int, int, int]], var_map: Mapping[int, int]
) -> dict[int, int]:
    """Build BDDs for every AIG variable.

    ``var_map`` maps AIG input variables to BDD nodes; returns a map from AIG
    variable to BDD node (constant var 0 maps to FALSE).
    """
    node_of: dict[int, int] = {0: bdd.false}
    node_of.update(var_map)

    def lit_bdd(lit: int) -> int:
        base = node_of[lit >> 1]
        return bdd.not_(base) if lit & 1 else base

    for var, a, b in aig_ands:
        node_of[var] = bdd.and_(lit_bdd(a), lit_bdd(b))
    return node_of
