"""SAT non-interference queries: two-copy self-composition of one net.

Ground truth for the static taint pass (:mod:`repro.lint.taint`).  A
clean policy verdict claims a sink net is *combinationally independent*
of a set of source registers in every reachable state, except through
declared declassifier nets.  The matching SAT query builds the sink's
cone twice over one AIG:

* copy A binds every register/input leaf to fresh variables (shared
  memories read through mux trees over per-word vectors);
* copy B shares every leaf with copy A **except** the source registers,
  which get fresh distinct variables, and is pre-seeded so that each
  declassifier net reuses copy A's vector — the two copies agree on the
  declassified digest but may disagree arbitrarily on the raw sources;
* the query asks for an assignment where the two sink vectors differ.

UNSAT means non-interference holds: no pair of states differing only in
the sources (and agreeing on the declassifiers) changes the sink — the
static ``clean`` verdict is validated.  SAT is a real dependence and may
only occur when the static pass reported taint (taint over-approximates;
the reverse would be a soundness bug).  The absint sharpening the static
pass uses is mirrored here by binding every reachably-constant node of
the cone to its constant vector in both copies, so the query quantifies
over the same abstract-reachable state space the lint claim is made for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..absint.fixpoint import FixpointResult, shared_fixpoint
from ..hdl import expr as E
from .aig import Aig, BitBlaster, Vec, fresh_vec, to_cnf
from .sat import Solver

if TYPE_CHECKING:  # pragma: no cover
    from ..hdl.netlist import Module


@dataclass(frozen=True)
class NIVerdict:
    """Outcome of one two-copy query.

    ``independent`` is True (UNSAT — non-interference proved), False
    (SAT — a concrete dependence exists) or None (conflict budget ran
    out).  ``vacuous`` marks queries with no free source register in the
    sink's cone: independence holds trivially.
    """

    independent: bool | None
    vacuous: bool
    conflicts: int
    seconds: float


def check_noninterference(
    module: "Module",
    sink: E.Expr,
    sources: tuple[str, ...] | list[str],
    declassifiers: tuple[E.Expr, ...] = (),
    fixpoint: FixpointResult | None = None,
    max_conflicts: int | None = 200_000,
) -> NIVerdict:
    """Is ``sink`` independent of the ``sources`` registers, modulo the
    ``declassifiers`` being tied equal across the two copies?"""
    start = time.perf_counter()
    if fixpoint is None:
        fixpoint = shared_fixpoint(module)
    roots = [sink, *declassifiers]
    cone = E.walk(roots)

    aig = Aig()

    def const_vec(width: int, value: int) -> Vec:
        return [1 if (value >> i) & 1 else 0 for i in range(width)]

    # shared leaf environment: fixpoint-constant registers are bound to
    # their constant (the abstract-reachable state space), the rest free
    regs_a: dict[str, Vec] = {}
    for node in cone:
        if isinstance(node, E.RegRead) and node.name not in regs_a:
            value = fixpoint.registers.get(node.name)
            if value is not None and value.is_const():
                regs_a[node.name] = const_vec(node.width, value.lo)
            else:
                regs_a[node.name] = fresh_vec(aig, node.width)
    inputs = {
        node.name: fresh_vec(aig, node.width)
        for node in cone
        if isinstance(node, E.Input)
    }
    mem_words: dict[str, list[Vec]] = {}
    for node in cone:
        if isinstance(node, E.MemRead) and node.mem not in mem_words:
            memory = module.memories[node.mem]
            size = 1 << memory.addr_width
            if memory.write_ports:
                # writable memory: shared symbolic content
                mem_words[node.mem] = [
                    fresh_vec(aig, memory.data_width) for _ in range(size)
                ]
            else:
                mem_words[node.mem] = [
                    const_vec(memory.data_width, memory.init.get(a, 0))
                    for a in range(size)
                ]

    # absint sharpening, mirrored: any reachably-constant interior node
    # is the same constant in both copies
    const_nodes = {
        id(node): const_vec(node.width, fixpoint.eval(node).lo)
        for node in cone
        if not isinstance(node, (E.Const, E.RegRead, E.Input))
        and fixpoint.eval(node).is_const()
    }

    blaster_a = BitBlaster(aig, regs=regs_a, inputs=inputs, mem_words=mem_words)
    blaster_a._memo.update(const_nodes)
    vec_a = blaster_a.blast(sink)
    cut_vecs = [blaster_a.blast(cut) for cut in declassifiers]

    regs_b = dict(regs_a)
    freed = []
    for name in sources:
        vec = regs_a.get(name)
        if vec is None or all(lit in (0, 1) for lit in vec):
            continue  # not in the cone, or constant-bound: nothing to free
        regs_b[name] = fresh_vec(aig, len(vec))
        freed.append(name)
    blaster_b = BitBlaster(aig, regs=regs_b, inputs=inputs, mem_words=mem_words)
    blaster_b._memo.update(const_nodes)
    for cut, vec in zip(declassifiers, cut_vecs):
        blaster_b._memo[id(cut)] = vec
    vec_b = blaster_b.blast(sink)

    diff = aig.or_many([aig.xor_(x, y) for x, y in zip(vec_a, vec_b)])
    if not freed or diff == 0:  # AIG FALSE: structurally identical copies
        return NIVerdict(
            independent=True,
            vacuous=not freed,
            conflicts=0,
            seconds=time.perf_counter() - start,
        )

    clauses, (root,) = to_cnf(aig, [diff])
    solver = Solver()
    solver.add_clauses(clauses)
    solver.add_clause([root])
    result = solver.solve(max_conflicts=max_conflicts)
    independent = (
        None if result.satisfiable is None else not result.satisfiable
    )
    return NIVerdict(
        independent=independent,
        vacuous=False,
        conflicts=result.conflicts,
        seconds=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class CrossCheckEntry:
    """One policy verdict paired with its SAT ground truth."""

    rule: str
    path: str
    static_clean: bool
    verdict: NIVerdict

    @property
    def contradicted(self) -> bool:
        """A static *clean* claim the solver refuted — a taint soundness
        bug (the reverse, static taint the solver cannot realise, is
        ordinary over-approximation and fine)."""
        return self.static_clean and self.verdict.independent is False


def crosscheck_policies(
    pipelined,
    fixpoint: FixpointResult | None = None,
    max_conflicts: int | None = 200_000,
) -> list[CrossCheckEntry]:
    """Cross-check every absence-of-flow policy verdict of a pipelined
    machine against its two-copy SAT query."""
    from ..lint.taint import taint_verdicts

    module = pipelined.module
    if fixpoint is None:
        fixpoint = shared_fixpoint(module)
    entries: list[CrossCheckEntry] = []
    for verdict in taint_verdicts(pipelined, fixpoint=fixpoint):
        ni = check_noninterference(
            module,
            verdict.sink,
            verdict.sources,
            declassifiers=verdict.declassifiers,
            fixpoint=fixpoint,
            max_conflicts=max_conflicts,
        )
        entries.append(
            CrossCheckEntry(
                rule=verdict.rule,
                path=verdict.path,
                static_clean=verdict.clean,
                verdict=ni,
            )
        )
    return entries
