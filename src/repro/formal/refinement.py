"""Step-refinement proofs: a machine's n-cycle pass implements a
specification step, for *all* states and programs.

The paper assumes the prepared sequential machine is correct and notes
that "automated verification of sequential machines is considered
state-of-the-art" (Section 7).  This module does that verification for
real: unroll the sequential machine ``n`` cycles from a fully *free*
initial state (including free ROM contents, i.e. an arbitrary program),
express the ISA step as expressions over the initial state, and prove by
SAT that the unrolled machine's final state equals the specification —
a theorem over every register file, memory, PC and program at once.

Usage (see ``tests/test_refinement.py`` for the toy machine's theorem)::

    proof = StepRefinement(module, steps=n)
    proof.assume(0, eq(counter, 0))                   # reset assumption
    proof.require_equal(spec_expr, impl_expr)         # spec@0 == impl@n
    result = proof.prove()
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..hdl import expr as E
from ..hdl.netlist import Module
from .aig import Aig
from .bmc import Counterexample, TransitionSystem, Unroller, _solve


@dataclass
class RefinementResult:
    """Outcome of a step-refinement proof."""

    proved: bool | None  # None: solver budget exhausted
    seconds: float
    aig_nodes: int
    counterexample: Counterexample | None = None

    def __bool__(self) -> bool:
        return bool(self.proved)


class StepRefinement:
    """Builds and discharges one step-refinement theorem."""

    def __init__(self, module: Module, steps: int, free_roms: bool = True) -> None:
        self.module = module
        self.steps = steps
        system = TransitionSystem.from_module(module)
        if free_roms:
            # ROMs stay constant across the unrolling but their *contents*
            # are free — the theorem quantifies over every program.
            system.constant_mems = set()
        self.system = system
        self.unroller = Unroller(
            system, support={var.name for var in system.state}
        )
        self.unroller.add_initial_frame(free=True)
        for _ in range(steps):
            self.unroller.add_step()
        self._assumptions: list[int] = []
        self._checks: list[int] = []

    @property
    def aig(self) -> Aig:
        return self.unroller.aig

    def assume(self, frame: int, expression: E.Expr) -> None:
        """Constrain the given frame (e.g. a reset condition on frame 0)."""
        self._assumptions.append(self.unroller.bit_in_frame(frame, expression))

    def require_equal(
        self,
        spec: E.Expr,
        impl: E.Expr,
        spec_frame: int = 0,
        impl_frame: int | None = None,
    ) -> None:
        """Require ``spec`` (evaluated in ``spec_frame``, default the
        initial state) to equal ``impl`` (evaluated in ``impl_frame``,
        default the final state)."""
        if spec.width != impl.width:
            raise ValueError(f"width mismatch: {spec.width} vs {impl.width}")
        impl_frame = self.steps if impl_frame is None else impl_frame
        spec_vec = self.unroller.blast_in_frame(spec_frame, spec)
        impl_vec = self.unroller.blast_in_frame(impl_frame, impl)
        aig = self.aig
        for a, b in zip(spec_vec, impl_vec):
            self._checks.append(aig.xnor_(a, b))

    def require(self, frame: int, expression: E.Expr) -> None:
        """Require a 1-bit condition to hold in a frame (e.g. the stage
        counter returned to 0)."""
        self._checks.append(self.unroller.bit_in_frame(frame, expression))

    def prove(self) -> RefinementResult:
        """SAT-check that no assignment satisfies the assumptions while
        violating any required equality."""
        aig = self.aig
        bad = aig.neg(aig.and_many(self._checks))
        start = time.perf_counter()
        result = _solve(aig, self._assumptions + [bad])
        elapsed = time.perf_counter() - start
        if result.satisfiable is None:
            return RefinementResult(
                proved=None, seconds=elapsed, aig_nodes=len(aig.ands)
            )
        if result.satisfiable:
            return RefinementResult(
                proved=False,
                seconds=elapsed,
                aig_nodes=len(aig.ands),
                counterexample=self.unroller.decode(result.model, self.steps + 1),
            )
        return RefinementResult(
            proved=True, seconds=elapsed, aig_nodes=len(aig.ands)
        )
