"""Static analyses over prepared/pipelined machines.

Currently: width-parametricity typing (:mod:`repro.analysis.widths`) and
the family-certificate layer built on it (:mod:`repro.analysis.family`),
which lets one discharged verdict cover a whole datapath-width family.
"""

from .widths import ConeTyping, MemSpec, PairMismatch, ParamType, StateSpec, infer_types
from .family import (
    FAMILIES,
    CrosscheckReport,
    FamilyAnalysis,
    FamilyContext,
    FamilyMismatch,
    FamilySpec,
    ObligationCertificate,
    analyze_family,
    crosscheck_family,
    family_context,
    family_fingerprint,
)

__all__ = [
    "ConeTyping",
    "MemSpec",
    "PairMismatch",
    "ParamType",
    "StateSpec",
    "infer_types",
    "FAMILIES",
    "CrosscheckReport",
    "FamilyAnalysis",
    "FamilyContext",
    "FamilyMismatch",
    "FamilySpec",
    "ObligationCertificate",
    "analyze_family",
    "crosscheck_family",
    "family_context",
    "family_fingerprint",
]
