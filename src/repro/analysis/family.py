"""Family certificates: prove an obligation once, cover the width family.

A *family* is one core built at every legal datapath width — the toy
machine at word 8, 16, 32, the DLX at 32, 48, 64.  Discharging the full
obligation suite per member repeats work that, for most obligations, is
literally identical: a stall-engine invariant's cone is the same control
circuit at every width, and HADES-style small-model reasoning says a
truncation-stable datapath cone proved at the cutoff width transfers
upward.  This module turns that observation into an auditable artifact:

1. :func:`analyze_family` builds **two** instances of a family (base and
   check width), runs the differential parametricity inference of
   :mod:`repro.analysis.widths` over every obligation cone, and emits an
   :class:`ObligationCertificate` per obligation — certified or not,
   with the reason and the entanglement count.

2. A certified obligation gets a **width-erased template**: the exact
   canonical serialization its content fingerprint digests, with every
   width-dependent numeric token replaced by an affine form ``a·W+b``
   (or a signed constant for folded all-ones masks).  The template's
   digest is the :dfn:`family fingerprint` — one key for the whole
   family.  At serve time the template is instantiated at the concrete
   width, **re-hash-consed** (hash-consing merges the DAG differently
   per width — degenerate zero-extensions fold, padding constants
   coincide — so the instantiated line list is deduplicated and folded
   exactly the way ``repro.hdl.expr`` interning would), and compared
   against the obligation's actual serialization.  A wrong or stale
   template can never alias a verdict.

3. :class:`FamilyContext` plugs into :func:`repro.jobs.engine.discharge_jobs`:
   certified obligations are served from a :class:`repro.jobs.cache.FamilyCache`
   under their family fingerprint, and freshly proved ones seed it.

4. :func:`crosscheck_family` is the soundness audit: every certified
   obligation is re-discharged *family-off* at two distinct widths and
   the verdicts compared verbatim.  Any mismatch is ``CONTRADICTED`` —
   the analysis (or a declassification) over-claimed, and CI fails.

Templates are erased from the *upper* instance pair (check width and one
step above), where no degenerate folds occur, and validated by
round-tripping through instantiation + re-hash-consing at the base
width.  All serializations are in *canonical* form, where ``K(...)``
concat lines are run-length-encoded (``K(5,5,5,3)`` → ``K(5*3,3)``) so
sign-replication — whose part count scales with width — becomes one
affine token instead of a variable-arity line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..absint.fixpoint import shared_fixpoint
from ..core.transform import PipelinedMachine, transform
from ..formal.bmc import TransitionSystem
from ..hdl import expr as E
from ..machine.prepared import PreparedMachine
from ..proofs.discharge import resolve_properties
from ..proofs.fingerprint import (
    _digest,
    equivalence_lines,
    invariant_lines,
    trace_lines,
)
from ..proofs.obligations import (
    Obligation,
    ObligationKind,
    ObligationSet,
    generate_obligations,
)
from .widths import (
    ConeTyping,
    MemSpec,
    PairMismatch,
    ParamType,
    StateSpec,
    infer_types,
)

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from ..jobs.cache import FamilyCache
    from ..jobs.engine import EngineParams
    from ..proofs.discharge import DischargeRecord


class FamilyMismatch(Exception):
    """The instances' serializations cannot be erased to one template."""


# ---------------------------------------------------------------------------
# family registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FamilySpec:
    """One width family: a core builder parameterized by datapath word.

    ``base_width`` is the cutoff the certificate discharges at (and the
    width the fault catalog's :data:`~repro.faults.catalog.CORES` entry
    builds, so family verdicts and ordinary discharge share machines);
    ``check_width`` is the second instance the differential analysis and
    the crosscheck audit use; ``widths`` is the sweep the differential
    test suite and the benchmark cover.
    """

    name: str
    base_width: int
    check_width: int
    widths: tuple[int, ...]
    build: Callable[[int], PreparedMachine]
    trace_cycles: int = 150

    @property
    def template_width(self) -> int:
        """The third instance templates are erased against — one stride
        above the check width, where no degenerate folds occur."""
        return self.check_width + (self.check_width - self.base_width)

    def instance(self, width: int) -> PipelinedMachine:
        return transform(self.build(width))


def _families() -> dict[str, FamilySpec]:
    from ..faults import catalog

    return {
        "toy": FamilySpec(
            "toy", 8, 16, (8, 16, 32), catalog._toy_machine, trace_cycles=60
        ),
        # The DLX instruction encoding is 32-bit and LHI fills bits 16..31,
        # so the family starts at word 32 and grows upward.
        "dlx-small": FamilySpec(
            "dlx-small",
            32,
            48,
            (32, 48, 64),
            catalog._dlx_small_machine,
            trace_cycles=150,
        ),
        "dlx-spec": FamilySpec(
            "dlx-spec",
            32,
            48,
            (32, 48, 64),
            catalog._dlx_spec_machine,
            trace_cycles=150,
        ),
    }


FAMILIES: dict[str, FamilySpec] = _families()


# ---------------------------------------------------------------------------
# canonical lines and width-erased templates
# ---------------------------------------------------------------------------

_NUM_SPLIT = re.compile(r"(\d+)")
_TEMPLATE_TOKEN = re.compile(r"\{[^{}]*\}|\d+")
_AFFINE = re.compile(r"\{(\d*)W([+-]\d+)?\}")
_SIGNED = re.compile(r"\{s(-?\d+)@(\d+)\}")
# node lines start with an uppercase kind letter; metadata lines
# (prop:/state:/reg:/...) are all lowercase
_NODE_LINE = re.compile(r"^[CIRMUBXKS][\d:(]")


def canonicalize(lines: Iterable[str]) -> tuple[str, ...]:
    """Run-length-encode concat lines; everything else passes through."""
    out: list[str] = []
    for line in lines:
        if line.startswith("K(") and line.endswith(")"):
            tokens = line[2:-1].split(",")
            runs: list[tuple[str, int]] = []
            for token in tokens:
                if runs and runs[-1][0] == token:
                    runs[-1] = (token, runs[-1][1] + 1)
                else:
                    runs.append((token, 1))
            body = ",".join(
                token if count == 1 else f"{token}*{count}"
                for token, count in runs
            )
            out.append(f"K({body})")
        else:
            out.append(line)
    return tuple(out)


def _render_affine(a: int, b: int) -> str:
    head = "W" if a == 1 else f"{a}W"
    return "{" + head + (f"{b:+d}" if b else "") + "}"


def _centered(value: int, width: int) -> int | None:
    if width < 1 or value >= (1 << width):
        return None
    half = 1 << (width - 1)
    return value - (1 << width) if value >= half else value


def erase_template(
    lines0: Sequence[str], lines1: Sequence[str], w0: int, w1: int
) -> tuple[str, ...]:
    """Unify two canonical serializations into one width-generic template.

    Numeric tokens are paired positionally: equal values stay literal,
    values differing by an exact multiple of ``w1 - w0`` become affine
    ``{a·W+b}`` fields, and the remainder fall back to signed constants
    ``{s c @ anchor}`` interpreted modulo ``2^anchor`` — this is how a
    folded all-ones mask (65535 at word 16, 16777215 at word 24) erases
    to ``-1`` at the width of a preceding field on the same line.
    Anything else — including mismatched skeletons — raises
    :class:`FamilyMismatch`, and the obligation is simply not certified.
    """
    if len(lines0) != len(lines1):
        raise FamilyMismatch(
            f"serializations differ in length ({len(lines0)} vs {len(lines1)})"
        )
    delta_w = w1 - w0
    if delta_w <= 0:
        raise FamilyMismatch("template widths must be increasing")
    template: list[str] = []
    for line_no, (l0, l1) in enumerate(zip(lines0, lines1)):
        parts0 = _NUM_SPLIT.split(l0)
        parts1 = _NUM_SPLIT.split(l1)
        if len(parts0) != len(parts1):
            raise FamilyMismatch(f"line {line_no}: token structure differs")
        resolved: list[tuple[int, int]] = []  # numeric fields at (w0, w1)
        out: list[str] = []
        for i, (p0, p1) in enumerate(zip(parts0, parts1)):
            if i % 2 == 0:  # skeleton text between numbers
                if p0 != p1:
                    raise FamilyMismatch(
                        f"line {line_no}: skeleton differs ({p0!r} vs {p1!r})"
                    )
                if "{" in p0 or "}" in p0:
                    raise FamilyMismatch(
                        f"line {line_no}: brace in skeleton text"
                    )
                out.append(p0)
                continue
            v0, v1 = int(p0), int(p1)
            if v0 == v1:
                out.append(p0)
            else:
                diff = v1 - v0
                a, rem = divmod(diff, delta_w)
                b = v0 - a * w0
                if rem == 0 and a >= 1 and v1 == a * w1 + b:
                    out.append(_render_affine(a, b))
                else:
                    for anchor in range(len(resolved) - 1, -1, -1):
                        a0, a1 = resolved[anchor]
                        c0 = _centered(v0, a0)
                        c1 = _centered(v1, a1)
                        if c0 is not None and c0 == c1:
                            out.append("{s" + str(c0) + "@" + str(anchor) + "}")
                            break
                    else:
                        raise FamilyMismatch(
                            f"line {line_no}: token not width-generic"
                            f" ({v0} vs {v1})"
                        )
            resolved.append((v0, v1))
        template.append("".join(out))
    return tuple(template)


def instantiate(template: Sequence[str], width: int) -> tuple[str, ...]:
    """Resolve a template at a concrete width (no re-hash-consing).

    Fields resolve left to right per line, so a signed field's anchor —
    an earlier numeric field giving its bit width — is always available.
    """
    out: list[str] = []
    for line in template:
        resolved: list[int] = []

        def sub(match: re.Match[str]) -> str:
            token = match.group(0)
            if token[0] != "{":
                value = int(token)
            else:
                affine = _AFFINE.fullmatch(token)
                if affine is not None:
                    a = int(affine.group(1) or "1")
                    b = int(affine.group(2) or "0")
                    value = a * width + b
                else:
                    signed = _SIGNED.fullmatch(token)
                    if signed is None:
                        raise FamilyMismatch(f"bad template field {token!r}")
                    c = int(signed.group(1))
                    anchor_width = resolved[int(signed.group(2))]
                    value = c % (1 << anchor_width)
                if value < 0:
                    raise FamilyMismatch(
                        f"template field {token!r} negative at width {width}"
                    )
            resolved.append(value)
            return str(value)

        out.append(_TEMPLATE_TOKEN.sub(sub, line))
    return tuple(out)


def _rewrite_ref(token: str, remap: list[int | None]) -> int:
    index = remap[int(token)]
    if index is None:
        raise FamilyMismatch("reference to a vanished (zero-width) node")
    return index


def recons(lines: Sequence[str]) -> tuple[str, ...]:
    """Re-run hash-consing over an instantiated serialization.

    At low widths the interned DAG merges nodes the template keeps
    separate (a scaled padding constant coinciding with a fixed one) and
    folds degenerate operations (a zero-width zero-extension constant, a
    single-part concat).  This pass reproduces exactly those rules on the
    *line* level — dedup identical node lines, drop zero-width constants,
    fold single-part concats, remap references — so that an instantiated
    template can be compared verbatim against the actual serialization of
    the machine built at that width.  Idempotent on already-consed input.
    """
    out: list[str] = []
    remap: list[int | None] = []
    seen: dict[str, int] = {}
    node_count = 0  # references index node lines only, in emission order

    def emit(line: str) -> None:
        nonlocal node_count
        existing = seen.get(line)
        if existing is not None:
            remap.append(existing)
            return
        seen[line] = node_count
        remap.append(node_count)
        node_count += 1
        out.append(line)

    for line in lines:
        if not _NODE_LINE.match(line):
            out.append(_rewrite_meta(line, remap))
            continue
        head = line[0]
        if head == "C":
            width_str, value = line[1:].split(":", 1)
            if width_str == "0":
                if value != "0":
                    raise FamilyMismatch("zero-width constant with a value")
                remap.append(None)  # node vanishes (degenerate zext padding)
                continue
            emit(line)
        elif head in "IR":
            emit(line)
        elif head == "M":
            body, ref = line.rsplit("@", 1)
            emit(f"{body}@{_rewrite_ref(ref, remap)}")
        elif head == "U":
            op, ref = re.fullmatch(r"U:(\w+)\((\d+)\)", line).groups()
            emit(f"U:{op}({_rewrite_ref(ref, remap)})")
        elif head == "B":
            op, ra, rb = re.fullmatch(r"B:(\w+)\((\d+),(\d+)\)", line).groups()
            emit(
                f"B:{op}({_rewrite_ref(ra, remap)},{_rewrite_ref(rb, remap)})"
            )
        elif head == "X":
            rs, rt, re_ = re.fullmatch(r"X\((\d+),(\d+),(\d+)\)", line).groups()
            emit(
                f"X({_rewrite_ref(rs, remap)},{_rewrite_ref(rt, remap)}"
                f",{_rewrite_ref(re_, remap)})"
            )
        elif head == "S":
            ra, lo, hi = re.fullmatch(r"S\((\d+),(\d+),(\d+)\)", line).groups()
            emit(f"S({_rewrite_ref(ra, remap)},{lo},{hi})")
        elif head == "K":
            runs: list[tuple[int, int]] = []
            for term in line[2:-1].split(","):
                match = re.fullmatch(r"(\d+)(?:\*(\d+))?", term)
                if match is None:
                    raise FamilyMismatch(f"malformed concat term {term!r}")
                count = int(match.group(2) or "1")
                if count == 0:
                    continue  # a replication that vanished at this width
                ref = remap[int(match.group(1))]
                if ref is None:
                    continue  # zero-width part dropped
                if runs and runs[-1][0] == ref:
                    runs[-1] = (ref, runs[-1][1] + count)
                else:
                    runs.append((ref, count))
            if not runs:
                raise FamilyMismatch("concat with no surviving parts")
            if len(runs) == 1 and runs[0][1] == 1:
                remap.append(runs[0][0])  # single-part concat folds away
                continue
            body = ",".join(
                str(ref) if count == 1 else f"{ref}*{count}"
                for ref, count in runs
            )
            emit(f"K({body})")
        else:  # pragma: no cover - regex-gated
            raise FamilyMismatch(f"unrecognized node line {line!r}")
    return tuple(out)


def _rewrite_meta(line: str, remap: list[int | None]) -> str:
    """Remap node references inside a metadata line."""

    def ref(token: str) -> str:
        return str(_rewrite_ref(token, remap))

    if line.startswith("prop:"):
        return "prop:" + ref(line[5:])
    if line.startswith("assume:"):
        body = line[len("assume:") :]
        if not body:
            return line
        return "assume:" + ",".join(ref(token) for token in body.split(","))
    if line.startswith("equiv:"):
        a, b = line[len("equiv:") :].split(",")
        return f"equiv:{ref(a)},{ref(b)}"
    if line.startswith("state:"):
        body, next_ref = line.rsplit(":", 1)
        return f"{body}:{ref(next_ref)}"
    if line.startswith("reg:"):
        body, next_ref, enable_ref = line.rsplit(":", 2)
        return f"{body}:{ref(next_ref)}:{ref(enable_ref)}"
    if line.startswith("port:"):
        body, en, addr, data = line.rsplit(":", 3)
        return f"{body}:{ref(en)}:{ref(addr)}:{ref(data)}"
    if line.startswith("probe:"):
        body, probe_ref = line.rsplit(":", 1)
        return f"{body}:{ref(probe_ref)}"
    # rom:/param:/trace:/module:/input:/mem: carry no node references
    return line


def family_fingerprint(kind: str, template: Sequence[str]) -> str:
    """Digest of the width-erased template — the family cache key.

    Versioned the same way content fingerprints are (``_digest`` prefixes
    the solver/engine version line), so engine changes invalidate family
    verdicts too.
    """
    return _digest([f"family:{kind}", *template])


# ---------------------------------------------------------------------------
# per-obligation serialization (must match the content fingerprint's view)
# ---------------------------------------------------------------------------


def obligation_lines(
    obligation: Obligation,
    pipelined: PipelinedMachine,
    system: TransitionSystem,
    params: "EngineParams",
) -> list[str]:
    """The canonical serialization of one obligation, exactly as its
    content fingerprint digests it (flat form for traces)."""
    if obligation.kind is ObligationKind.INVARIANT:
        assert obligation.prop is not None
        return invariant_lines(
            system,
            obligation.prop,
            obligation.assume,
            params.invariant_params(),
        )
    if obligation.kind is ObligationKind.EQUIVALENCE:
        assert obligation.equiv is not None
        return equivalence_lines(*obligation.equiv)
    assert obligation.checker is not None
    return trace_lines(
        pipelined.module,
        obligation.checker,
        params.trace_params(obligation.checker, pipelined.n_stages),
    )


# ---------------------------------------------------------------------------
# certificates
# ---------------------------------------------------------------------------


@dataclass
class ObligationCertificate:
    """The analysis verdict for one obligation of a family."""

    oid: str
    kind: str
    certified: bool
    reason: str
    cutoff_width: int
    entangled_nodes: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    template: tuple[str, ...] | None = None
    family_fingerprint: str | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "oid": self.oid,
            "kind": self.kind,
            "certified": self.certified,
            "reason": self.reason,
            "cutoff_width": self.cutoff_width,
            "entangled_nodes": self.entangled_nodes,
            "counts": dict(self.counts),
            "family_fingerprint": self.family_fingerprint,
        }


@dataclass
class FamilyAnalysis:
    """Certificates for every obligation of a family, plus the instances
    they were inferred from (kept alive so hash-consed ids stay valid)."""

    spec: FamilySpec
    base: PipelinedMachine = field(repr=False)
    check: PipelinedMachine = field(repr=False)
    certificates: dict[str, ObligationCertificate] = field(default_factory=dict)

    def certified(self) -> list[ObligationCertificate]:
        return [c for c in self.certificates.values() if c.certified]

    def to_dict(self) -> dict[str, object]:
        certified = self.certified()
        return {
            "family": self.spec.name,
            "base_width": self.spec.base_width,
            "check_width": self.spec.check_width,
            "widths": list(self.spec.widths),
            "obligations": len(self.certificates),
            "certified": len(certified),
            "certificates": [
                self.certificates[oid].to_dict()
                for oid in sorted(self.certificates)
            ],
        }


def _state_specs(
    support: Sequence[str], system0: TransitionSystem, system1: TransitionSystem
) -> list[StateSpec]:
    specs = []
    for name in support:
        v0, v1 = system0.var(name), system1.var(name)
        specs.append(
            StateSpec(
                name=name,
                width0=v0.width,
                width1=v1.width,
                init0=v0.init,
                init1=v1.init,
                next0=v0.next,
                next1=v1.next,
            )
        )
    return specs


def _mem_specs(
    support: Sequence[str],
    pipelined0: PipelinedMachine,
    pipelined1: PipelinedMachine,
    system0: TransitionSystem,
) -> list[MemSpec]:
    by_mem: dict[str, list[str]] = {}
    for name in support:
        if "[" in name:
            by_mem.setdefault(name.split("[")[0], []).append(name)
    specs = []
    for mem in sorted(by_mem):
        m0 = pipelined0.module.memories[mem]
        m1 = pipelined1.module.memories[mem]
        specs.append(
            MemSpec(
                name=mem,
                width0=m0.data_width,
                width1=m1.data_width,
                rom=mem in system0.constant_mems,
                init_equal=(
                    m0.addr_width == m1.addr_width and m0.init == m1.init
                ),
                word_vars=tuple(sorted(by_mem[mem])),
            )
        )
    return specs


class _Sharpener:
    """Absint value oracle: a pair may drop to ``UNIFORM`` when the
    known-bits/interval fixpoints prove the two instances equal-valued —
    either both reachably constant with the same value, or
    truncation-stable (``SLICEWISE``: narrow == wide mod 2^w0) with the
    wide instance provably below ``2^w0``, so the high bits that could
    differ are known zero and the integers coincide."""

    def __init__(self, pipelined0: PipelinedMachine, pipelined1: PipelinedMachine):
        self.fp0 = shared_fixpoint(pipelined0.module)
        self.fp1 = shared_fixpoint(pipelined1.module)
        self._memo: dict[tuple[int, int, int], bool] = {}

    def prime(self, roots0: Sequence[E.Expr], roots1: Sequence[E.Expr]) -> None:
        """Evaluate whole cones once, so per-pair consultations are
        memo-table lookups instead of per-node cone walks."""
        for root in roots0:
            self.fp0.eval(root)
        for root in roots1:
            self.fp1.eval(root)

    def __call__(self, n0: E.Expr, n1: E.Expr, computed: ParamType) -> bool:
        key = (id(n0), id(n1), int(computed))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        v0 = self.fp0.values.get(id(n0))
        if v0 is None:
            v0 = self.fp0.eval(n0)
        v1 = self.fp1.values.get(id(n1))
        if v1 is None:
            v1 = self.fp1.eval(n1)
        result = v0.is_const() and v1.is_const() and v0.lo == v1.lo
        if not result and computed is ParamType.SLICEWISE:
            result = n0.width < n1.width and v1.hi < (1 << n0.width)
        self._memo[key] = result
        return result


def _declassified(pipelined: PipelinedMachine) -> set[int]:
    # Speculation mispredict bits and designer-declared scheduling oracles
    # (branch decisions) are the sanctioned squash/redirect channels: the
    # scheduling argument quantifies over their outcomes, so the one-bit
    # results are width-generic even though the compared datapath values
    # are not.  Audited empirically by crosscheck_family.
    ids = {id(hw.mispredict) for hw in pipelined.speculations}
    ids.update(id(oracle) for oracle in pipelined.oracles)
    return ids


_UNIFORM = ParamType.UNIFORM
_SLICEWISE = ParamType.SLICEWISE


def _gate_roots(
    typing: ConeTyping,
    roots0: Sequence[E.Expr],
    roots1: Sequence[E.Expr],
    bound: ParamType,
) -> str | None:
    for r0, r1 in zip(roots0, roots1):
        if typing.of(r0, r1) > bound:
            return f"root typed {typing.of(r0, r1)}"
    return None


def _gate_trace(
    typing: ConeTyping,
    pipelined0: PipelinedMachine,
    pipelined1: PipelinedMachine,
) -> str | None:
    """Everything the trace checker can observe must be width-stable:
    unscaled (control) signals ``UNIFORM``, scaled (datapath) signals
    ``SLICEWISE``."""
    module0, module1 = pipelined0.module, pipelined1.module
    for (name, reg0), reg1 in zip(
        module0.registers.items(), module1.registers.values()
    ):
        bound = _UNIFORM if reg0.width == reg1.width else _SLICEWISE
        if typing.env.get(name, ParamType.ENTANGLED) > bound:
            return f"register {name} typed {typing.env[name]}"
    for (name, memory0), memory1 in zip(
        module0.memories.items(), module1.memories.values()
    ):
        for port0, port1 in zip(memory0.write_ports, memory1.write_ports):
            if typing.of(port0.enable, port1.enable) > _UNIFORM:
                return f"memory {name} write enable not uniform"
            if typing.of(port0.addr, port1.addr) > _UNIFORM:
                return f"memory {name} write address not uniform"
            bound = (
                _UNIFORM
                if port0.data.width == port1.data.width
                else _SLICEWISE
            )
            if typing.of(port0.data, port1.data) > bound:
                return f"memory {name} write data entangled"
    for (name, probe0), probe1 in zip(
        module0.probes.items(), module1.probes.values()
    ):
        bound = _UNIFORM if probe0.width == probe1.width else _SLICEWISE
        if typing.of(probe0, probe1) > bound:
            return f"probe {name} typed {typing.of(probe0, probe1)}"
    for signals0, signals1 in zip(
        _engine_signals(pipelined0), _engine_signals(pipelined1)
    ):
        for stage, (s0, s1) in enumerate(zip(signals0, signals1)):
            if typing.of(s0, s1) > _UNIFORM:
                return f"stall-engine signal (stage {stage}) not uniform"
    return None


def _engine_signals(pipelined: PipelinedMachine) -> list[list[E.Expr]]:
    engine = pipelined.engine
    return [engine.full, engine.dhaz, engine.stall, engine.rollback_prime, engine.ue]


def analyze_family(
    spec: FamilySpec,
    params: "EngineParams | None" = None,
    absint: bool = True,
) -> FamilyAnalysis:
    """Run the differential width-parametricity analysis over one family.

    Builds the base- and check-width instances, types every obligation's
    cone by paired bisimulation, erases width-generic templates against a
    third (template-width) instance, and emits one certificate per
    obligation.  Failures anywhere — structural divergence, entangled
    roots, un-erasable serializations — yield an *uncertified*
    certificate with the reason; they never raise.
    """
    if params is None:
        from ..jobs.engine import EngineParams

        params = EngineParams(trace_cycles=spec.trace_cycles)
    pipelined0 = spec.instance(spec.base_width)
    pipelined1 = spec.instance(spec.check_width)
    pipelined2 = spec.instance(spec.template_width)
    obligations0 = generate_obligations(pipelined0)
    obligations1 = generate_obligations(pipelined1)
    obligations2 = generate_obligations(pipelined2)
    resolve_properties(pipelined0, obligations0)
    resolve_properties(pipelined1, obligations1)
    resolve_properties(pipelined2, obligations2)
    system0 = TransitionSystem.from_module(pipelined0.module)
    system1 = TransitionSystem.from_module(pipelined1.module)
    system2 = TransitionSystem.from_module(pipelined2.module)
    sharpen = _Sharpener(pipelined0, pipelined1) if absint else None
    declassify0 = _declassified(pipelined0)
    declassify1 = _declassified(pipelined1)
    by_oid1 = {obligation.oid: obligation for obligation in obligations1}
    by_oid2 = {obligation.oid: obligation for obligation in obligations2}

    analysis = FamilyAnalysis(spec=spec, base=pipelined0, check=pipelined1)

    module_typing: ConeTyping | PairMismatch | None = None

    def trace_typing() -> ConeTyping:
        nonlocal module_typing
        if module_typing is None:
            roots0 = pipelined0.module.roots() + [
                signal for group in _engine_signals(pipelined0) for signal in group
            ]
            roots1 = pipelined1.module.roots() + [
                signal for group in _engine_signals(pipelined1) for signal in group
            ]
            states = [
                StateSpec(
                    name=name,
                    width0=reg0.width,
                    width1=reg1.width,
                    init0=reg0.init,
                    init1=reg1.init,
                    next0=reg0.next,
                    next1=reg1.next,
                    enable0=reg0.enable,
                    enable1=reg1.enable,
                )
                for (name, reg0), reg1 in zip(
                    pipelined0.module.registers.items(),
                    pipelined1.module.registers.values(),
                )
            ]
            mems = [
                MemSpec(
                    name=name,
                    width0=m0.data_width,
                    width1=m1.data_width,
                    rom=not m0.write_ports,
                    init_equal=(
                        m0.addr_width == m1.addr_width and m0.init == m1.init
                    ),
                    ports0=tuple(
                        (p.enable, p.addr, p.data) for p in m0.write_ports
                    ),
                    ports1=tuple(
                        (p.enable, p.addr, p.data) for p in m1.write_ports
                    ),
                )
                for (name, m0), m1 in zip(
                    pipelined0.module.memories.items(),
                    pipelined1.module.memories.values(),
                )
            ]
            try:
                if sharpen is not None:
                    sharpen.prime(roots0, roots1)
                module_typing = infer_types(
                    roots0,
                    roots1,
                    states=states,
                    mems=mems,
                    declassify0=declassify0,
                    declassify1=declassify1,
                    sharpen=sharpen,
                )
            except PairMismatch as exc:
                module_typing = exc
        if isinstance(module_typing, PairMismatch):
            raise module_typing
        return module_typing

    for obligation in obligations0:
        oid = obligation.oid
        kind = obligation.kind.name.lower()
        other = by_oid1.get(oid)
        upper = by_oid2.get(oid)
        certificate = ObligationCertificate(
            oid=oid,
            kind=kind,
            certified=False,
            reason="",
            cutoff_width=spec.base_width,
        )
        analysis.certificates[oid] = certificate
        if other is None or upper is None:
            certificate.reason = "obligation missing at a sibling width"
            continue
        scaled_support: int | None = None
        try:
            if obligation.kind is ObligationKind.INVARIANT:
                assert obligation.prop is not None and other.prop is not None
                roots0 = [obligation.prop, *obligation.assume]
                roots1 = [other.prop, *other.assume]
                support = sorted(system0.cone_of_influence(roots0))
                support1 = sorted(system1.cone_of_influence(roots1))
                if support != support1:
                    raise PairMismatch("cone supports differ across widths")
                scaled_support = sum(
                    1
                    for name in support
                    if system0.var(name).width != system1.var(name).width
                )
                walk0 = roots0 + [system0.var(n).next for n in support]
                walk1 = roots1 + [system1.var(n).next for n in support]
                if sharpen is not None:
                    sharpen.prime(walk0, walk1)
                typing = infer_types(
                    walk0,
                    walk1,
                    states=_state_specs(support, system0, system1),
                    mems=_mem_specs(support, pipelined0, pipelined1, system0),
                    declassify0=declassify0,
                    declassify1=declassify1,
                    sharpen=sharpen,
                )
                failure = _gate_roots(typing, roots0, roots1, _UNIFORM)
            elif obligation.kind is ObligationKind.EQUIVALENCE:
                assert obligation.equiv is not None and other.equiv is not None
                roots0 = list(obligation.equiv)
                roots1 = list(other.equiv)
                if sharpen is not None:
                    sharpen.prime(roots0, roots1)
                typing = infer_types(
                    roots0,
                    roots1,
                    declassify0=declassify0,
                    declassify1=declassify1,
                    sharpen=sharpen,
                )
                failure = _gate_roots(typing, roots0, roots1, _SLICEWISE)
            else:
                typing = trace_typing()
                failure = _gate_trace(typing, pipelined0, pipelined1)
            certificate.entangled_nodes = typing.entangled
            certificate.counts = typing.counts()
            if scaled_support is not None:
                certificate.counts["scaled_support"] = scaled_support
            if failure is not None:
                certificate.reason = failure
                continue
            lines0 = canonicalize(
                obligation_lines(obligation, pipelined0, system0, params)
            )
            lines1 = canonicalize(
                obligation_lines(other, pipelined1, system1, params)
            )
            lines2 = canonicalize(
                obligation_lines(upper, pipelined2, system2, params)
            )
            template = erase_template(
                lines1, lines2, spec.check_width, spec.template_width
            )
            # the template must round-trip — after re-hash-consing — at
            # every analysed width; instantiation + recons is exactly how
            # serve-time validation works, so this check is the guarantee
            # that width-dependent folds (degenerate zero-extensions,
            # coinciding padding constants) are reproduced faithfully
            if recons(instantiate(template, spec.base_width)) != lines0:
                raise FamilyMismatch("template does not round-trip at base")
            if recons(instantiate(template, spec.check_width)) != lines1:
                raise FamilyMismatch("template does not round-trip at check")
        except (PairMismatch, FamilyMismatch) as exc:
            certificate.reason = str(exc) or type(exc).__name__
            continue
        certificate.certified = True
        certificate.reason = "width-parametric"
        certificate.template = template
        certificate.family_fingerprint = family_fingerprint(kind, template)
    return analysis


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------


class FamilyContext:
    """Serve/seed adapter between the discharge engine and a family cache.

    Built once per (core, width) by the CLI or service; the engine calls
    :meth:`lookup` for every raw obligation before solving and
    :meth:`seed` for every freshly proved one after.  All serve paths
    re-validate the instantiated template against the obligation's
    actual serialization, so a certificate can only ever alias the
    obligation it was erased from.
    """

    def __init__(
        self,
        analysis: FamilyAnalysis,
        width: int,
        cache: "FamilyCache | None",
    ) -> None:
        self.analysis = analysis
        self.width = width
        self.cache = cache
        self.served = 0
        self.seeded = 0
        self._validated: dict[str, str] = {}  # oid -> family fingerprint

    @property
    def certified(self) -> int:
        return len(self.analysis.certified())

    def _validate(
        self,
        obligation: Obligation,
        pipelined: PipelinedMachine,
        system: TransitionSystem,
        params: "EngineParams",
    ) -> str | None:
        """Family fingerprint for this obligation at this width, or None."""
        if obligation.oid in self._validated:
            return self._validated[obligation.oid]
        certificate = self.analysis.certificates.get(obligation.oid)
        if (
            certificate is None
            or not certificate.certified
            or certificate.template is None
            or self.width < certificate.cutoff_width
        ):
            return None
        actual = canonicalize(
            obligation_lines(obligation, pipelined, system, params)
        )
        try:
            expected = recons(instantiate(certificate.template, self.width))
        except FamilyMismatch:
            return None
        if expected != actual:
            return None
        assert certificate.family_fingerprint is not None
        self._validated[obligation.oid] = certificate.family_fingerprint
        return certificate.family_fingerprint

    def lookup(
        self,
        obligation: Obligation,
        pipelined: PipelinedMachine,
        system: TransitionSystem,
        params: "EngineParams",
    ) -> "tuple[DischargeRecord, str] | None":
        """A cached family verdict applicable to this obligation, if any."""
        if self.cache is None:
            return None
        fingerprint = self._validate(obligation, pipelined, system, params)
        if fingerprint is None:
            return None
        record = self.cache.get(fingerprint)
        if record is None:
            return None
        self.cache.record_width(fingerprint, self.width)
        self.served += 1
        return (
            replace(record, oid=obligation.oid, title=obligation.title),
            fingerprint,
        )

    def seed(
        self,
        obligation: Obligation,
        pipelined: PipelinedMachine,
        system: TransitionSystem,
        params: "EngineParams",
        record: "DischargeRecord",
    ) -> bool:
        """Store a freshly proved verdict under its family fingerprint."""
        if self.cache is None:
            return False
        fingerprint = self._validate(obligation, pipelined, system, params)
        if fingerprint is None:
            return False
        stored = self.cache.put_family(
            fingerprint,
            record,
            base_width=self.analysis.spec.base_width,
            width=self.width,
            core=self.analysis.spec.name,
        )
        if stored:
            self.seeded += 1
        return stored

    def counters(self) -> dict[str, int]:
        return {
            "certified": self.certified,
            "served": self.served,
            "seeded": self.seeded,
        }


_ANALYSES: dict[tuple[str, str], FamilyAnalysis] = {}


def family_context(
    core: str,
    width: int | None = None,
    cache: "FamilyCache | None" = None,
    params: "EngineParams | None" = None,
    absint: bool = True,
) -> FamilyContext | None:
    """Memoised analysis + context for one core, or None for non-family
    cores.  The analysis is pure in (core, params), so repeated discharges
    — the width sweep, the service's per-request calls — reuse it."""
    spec = FAMILIES.get(core)
    if spec is None:
        return None
    if params is None:
        from ..jobs.engine import EngineParams

        params = EngineParams(trace_cycles=spec.trace_cycles)
    key = (
        core,
        f"{sorted(params.invariant_params().items())!r}"
        f":{params.trace_cycles}:{params.liveness_bound}:{absint}",
    )
    analysis = _ANALYSES.get(key)
    if analysis is None:
        analysis = analyze_family(spec, params, absint=absint)
        _ANALYSES[key] = analysis
    return FamilyContext(analysis, width or spec.base_width, cache)


# ---------------------------------------------------------------------------
# soundness audit
# ---------------------------------------------------------------------------


@dataclass
class CrosscheckReport:
    """Verbatim verdict comparison of certified obligations at two widths."""

    family: str
    widths: tuple[int, int]
    checked: list[str] = field(default_factory=list)
    contradicted: list[dict[str, str]] = field(default_factory=list)
    statuses: dict[str, dict[str, str]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.contradicted

    def to_dict(self) -> dict[str, object]:
        return {
            "family": self.family,
            "widths": list(self.widths),
            "checked": list(self.checked),
            "contradicted": list(self.contradicted),
            "statuses": {k: dict(v) for k, v in self.statuses.items()},
        }


def crosscheck_family(
    spec: FamilySpec,
    params: "EngineParams | None" = None,
    sample: int | None = None,
    analysis: FamilyAnalysis | None = None,
) -> CrosscheckReport:
    """Audit certificates empirically: re-discharge every certified
    obligation *family-off* at the base and check widths and compare the
    verdicts verbatim.  A mismatch means the analysis claimed
    width-independence for a width-dependent obligation — CONTRADICTED.
    """
    from ..jobs.engine import EngineParams, discharge_jobs

    if params is None:
        params = EngineParams(trace_cycles=spec.trace_cycles)
    if analysis is None:
        analysis = analyze_family(spec, params)
    oids = sorted(c.oid for c in analysis.certified())
    if sample is not None:
        oids = oids[:sample]
    report = CrosscheckReport(
        family=spec.name,
        widths=(spec.base_width, spec.check_width),
        checked=list(oids),
    )
    if not oids:
        return report
    run_params = replace(params, family=False)
    per_width: dict[int, dict[str, str]] = {}
    for width in (spec.base_width, spec.check_width):
        pipelined = spec.instance(width)
        full = generate_obligations(pipelined)
        keep = [o for o in full if o.oid in set(oids)]
        subset = ObligationSet(machine_name=full.machine_name, obligations=keep)
        result = discharge_jobs(pipelined, subset, params=run_params, cache=None)
        per_width[width] = {
            outcome.record.oid: outcome.record.status.name
            for outcome in result.outcomes
        }
    for oid in oids:
        status0 = per_width[spec.base_width].get(oid, "missing")
        status1 = per_width[spec.check_width].get(oid, "missing")
        report.statuses[oid] = {
            str(spec.base_width): status0,
            str(spec.check_width): status1,
        }
        if status0 != status1:
            report.contradicted.append(
                {
                    "oid": oid,
                    str(spec.base_width): status0,
                    str(spec.check_width): status1,
                }
            )
    return report
