"""Width-parametricity (slice-dependence) type inference.

The datapath width ``W`` of a prepared machine is a family parameter: the
toy core exists at word 8, 16, 32, ..., the DLX at 32, 48, 64, ....  The
HADES small-model observation (see PAPERS.md) is that most obligations do
not *depend* on ``W``: the control cone is literally the same circuit at
every width, and the datapath cone merely replicates one bit-slice.  This
module assigns every net a **parametricity type** witnessing (a sound
approximation of) that independence:

``CONST``
    The net is a literal whose value is identical in every family member.
``UNIFORM``
    The net's value is identical in every family member — control signals
    decoded from the fixed-width instruction encoding, hazard compares on
    5-bit register indices, full/valid bits.
``SLICEWISE``
    The net is *truncation-stable*: for any two widths ``w <= w'`` the
    low ``w`` bits of the wider instance equal the narrower instance
    (datapath values flowing through ``+``/``-``/bitwise logic — carries
    propagate upward only, so the common low slice agrees).
``ENTANGLED``
    Width-coupled: no cross-width relation is claimed (comparisons and
    right-shifts of scaled data, signed interpretation of scaled values,
    address arithmetic folded into control).

Types are inferred **differentially** over a *pair* of instances built at
two distinct widths.  The pairing is a top-down bisimulation from matched
roots: each reachable *pair* of nodes — not each node — is a unit of the
analysis, because hash-consing merges the two DAGs differently per width
(at word 32 the DLX's ``imm16_zext`` padding constant coincides with the
LHI concat's fixed 16-bit zero; at word 48 they are distinct nodes), so
one node of the narrow instance may legitimately pair with several nodes
of the wide one.  Pairing reads per-pair facts the single-instance view
cannot see — does this constant's width scale?  are these two constants
the same value?  Structural divergence between the instances
(width-dependent slice bounds, mismatched operators) raises
:class:`PairMismatch`, which callers treat as "not certifiable": the
analysis fails safe.

State elements (registers / transition-system variables / memory words)
are typed by a Kleene fixpoint: every element starts at the type of its
(width-independent) reset value and is joined with the type of its next
function until stable — the forward may-analysis over the four-point
lattice, monotone and therefore terminating.

The inference can be *sharpened* by the absint known-bits fixpoint
(:mod:`repro.absint`): a net proved reachably-constant in **both**
instances with the same value is ``UNIFORM`` regardless of its syntactic
type.  Individual nets can also be *declassified* to ``UNIFORM`` — used
by :mod:`repro.analysis.family` for speculation mispredict bits, the
sanctioned one-bit squash channel whose value the scheduling argument
quantifies over (mirroring the taint rung's speculative-control
declassification); every declassification is audited empirically by
:func:`repro.analysis.family.crosscheck_family`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Callable, Iterable, Sequence

from ..hdl import expr as E


class ParamType(IntEnum):
    """The four-point parametricity lattice (join = max)."""

    CONST = 0
    UNIFORM = 1
    SLICEWISE = 2
    ENTANGLED = 3

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.name.lower()


def join(*types: ParamType) -> ParamType:
    return ParamType(max(types)) if types else ParamType.CONST


class PairMismatch(Exception):
    """The two family instances diverge structurally — the DAGs cannot be
    paired from the given roots (mismatched operators, width-dependent
    slice bounds, different concat run shapes).  Certification fails
    safe."""


@dataclass(frozen=True)
class StateSpec:
    """One state element under the fixpoint, paired across instances.

    ``enable`` is ``None`` when the update condition is already folded
    into ``next`` (transition-system variables); ``next`` is ``None`` for
    free (universally quantified) leaves.
    """

    name: str
    width0: int
    width1: int
    init0: int
    init1: int
    next0: E.Expr | None = None
    next1: E.Expr | None = None
    enable0: E.Expr | None = None
    enable1: E.Expr | None = None


@dataclass(frozen=True)
class MemSpec:
    """One memory, paired across instances.

    ``rom`` memories have fixed contents; ``init_equal`` says the word
    dictionaries are identical across the two instances.  ``word_vars``
    names the per-word :class:`StateSpec` entries (transition-system
    mode); ``ports`` carries explicit write ports (module mode).
    """

    name: str
    width0: int
    width1: int
    rom: bool = False
    init_equal: bool = True
    word_vars: tuple[str, ...] = ()
    ports0: tuple[tuple[E.Expr, E.Expr, E.Expr], ...] = ()
    ports1: tuple[tuple[E.Expr, E.Expr, E.Expr], ...] = ()


def _rle(parts: Sequence[E.Expr]) -> list[tuple[E.Expr, int]]:
    """Collapse adjacent identical (hash-consed) concat parts into runs —
    ``sext`` replicates one sign-bit node ``W - k`` times, so the run
    *count* scales with width while the run list stays stable."""
    runs: list[tuple[E.Expr, int]] = []
    for part in parts:
        if runs and runs[-1][0] is part:
            runs[-1] = (part, runs[-1][1] + 1)
        else:
            runs.append((part, 1))
    return runs


def _align_runs(
    n0: E.Concat, n1: E.Concat
) -> tuple[list[tuple[E.Expr, int]], list[tuple[E.Expr, int]]]:
    """Match the two concats' RLE runs, or raise :class:`PairMismatch`.

    A zero-extension is the identity at the family's narrowest width — at
    word 32 the DLX ``zext(x, W)`` has no padding part at all, at word 48
    it grows a zero-constant head run.  When the wide instance has exactly
    one extra *leading all-zero constant* run, that run is dropped before
    alignment: the wide concat equals the aligned remainder zero-extended,
    which preserves the integer value, so the transfer rule for the
    aligned runs applies unchanged.
    """
    runs0, runs1 = _rle(n0.parts), _rle(n1.parts)
    if len(runs1) == len(runs0) + 1:
        head, _count = runs1[0]
        if isinstance(head, E.Const) and head.value == 0:
            runs1 = runs1[1:]
    if len(runs0) != len(runs1):
        raise PairMismatch(
            f"concat run shapes differ ({len(runs0)} vs {len(runs1)})"
        )
    return runs0, runs1


def _child_pairs(n0: E.Expr, n1: E.Expr) -> list[tuple[E.Expr, E.Expr]]:
    """Matched children of a structurally compatible pair, or raise."""
    if type(n0) is not type(n1):
        raise PairMismatch(f"{type(n0).__name__} paired with {type(n1).__name__}")
    if isinstance(n0, E.Const):
        return []
    if isinstance(n0, (E.Input, E.RegRead)):
        if n0.name != n1.name:
            raise PairMismatch(f"leaf {n0.name} paired with {n1.name}")
        return []
    if isinstance(n0, E.MemRead):
        if n0.mem != n1.mem:
            raise PairMismatch(f"memory {n0.mem} paired with {n1.mem}")
        return [(n0.addr, n1.addr)]
    if isinstance(n0, E.Unary):
        if n0.op != n1.op:
            raise PairMismatch(f"unary {n0.op} paired with {n1.op}")
        return [(n0.a, n1.a)]
    if isinstance(n0, E.Binary):
        if n0.op != n1.op:
            raise PairMismatch(f"binary {n0.op} paired with {n1.op}")
        return [(n0.a, n1.a), (n0.b, n1.b)]
    if isinstance(n0, E.Mux):
        return [(n0.sel, n1.sel), (n0.then, n1.then), (n0.els, n1.els)]
    if isinstance(n0, E.Concat):
        runs0, runs1 = _align_runs(n0, n1)
        return [(p0, p1) for (p0, _), (p1, _) in zip(runs0, runs1)]
    if isinstance(n0, E.Slice):
        if n0.low != n1.low or n0.high != n1.high:
            # a width-dependent slice window selects *different* bits per
            # family member — no parametricity statement survives it
            raise PairMismatch(
                "slice bounds scale with width"
                f" ([{n0.low}:{n0.high}] vs [{n1.low}:{n1.high}])"
            )
        return [(n0.a, n1.a)]
    raise AssertionError(type(n0).__name__)  # pragma: no cover


def pair_nodes(
    roots0: Iterable[E.Expr], roots1: Iterable[E.Expr]
) -> tuple[list[tuple[E.Expr, E.Expr]], dict[tuple[int, int], int]]:
    """Pair the two DAGs by bisimulation from matched roots.

    Returns the reachable pairs in post-order (children before parents)
    plus the ``(id0, id1) -> position`` index.  One node may appear in
    several pairs — that is the point: hash-consing merges the instances
    differently per width, and only the *pair* has a well-defined
    parametricity type.  Raises :class:`PairMismatch` on any structural
    divergence.
    """
    roots0, roots1 = list(roots0), list(roots1)
    if len(roots0) != len(roots1):
        raise PairMismatch(
            f"root counts differ ({len(roots0)} vs {len(roots1)})"
        )
    order: list[tuple[E.Expr, E.Expr]] = []
    index: dict[tuple[int, int], int] = {}
    # iterative DFS; the boolean marks "children already pushed", giving
    # post-order without recursion (DLX cones are deep)
    stack: list[tuple[E.Expr, E.Expr, bool]] = [
        (r0, r1, False) for r0, r1 in reversed(list(zip(roots0, roots1)))
    ]
    expanding: set[tuple[int, int]] = set()
    while stack:
        n0, n1, expanded = stack.pop()
        key = (id(n0), id(n1))
        if key in index:
            continue
        if expanded:
            expanding.discard(key)
            index[key] = len(order)
            order.append((n0, n1))
            continue
        if key in expanding:  # already scheduled via another parent
            continue
        expanding.add(key)
        stack.append((n0, n1, True))
        for c0, c1 in reversed(_child_pairs(n0, n1)):
            if (id(c0), id(c1)) not in index:
                stack.append((c0, c1, False))
    return order, index


@dataclass
class ConeTyping:
    """The inferred types of one paired cone."""

    order: list[tuple[E.Expr, E.Expr]] = field(repr=False)
    index: dict[tuple[int, int], int] = field(repr=False)
    types: list[ParamType] = field(repr=False)
    env: dict[str, ParamType] = field(default_factory=dict)
    iterations: int = 0

    def of(self, node0: E.Expr, node1: E.Expr) -> ParamType:
        """Type of a pair inside the analyzed cone."""
        return self.types[self.index[(id(node0), id(node1))]]

    @property
    def entangled(self) -> int:
        return sum(1 for t in self.types if t is ParamType.ENTANGLED)

    def counts(self) -> dict[str, int]:
        result = {t.name.lower(): 0 for t in ParamType}
        for t in self.types:
            result[t.name.lower()] += 1
        return result


_REDUCTIONS = frozenset({"REDOR", "REDAND", "REDXOR"})
_ARITH = frozenset({"ADD", "SUB", "MUL"})
_BITWISE = frozenset({"AND", "OR", "XOR"})
_UNSIGNED_CMP = frozenset({"EQ", "NE", "ULT", "ULE"})
_SIGNED_CMP = frozenset({"SLT", "SLE"})


def infer_types(
    roots0: Iterable[E.Expr],
    roots1: Iterable[E.Expr],
    states: Sequence[StateSpec] = (),
    mems: Sequence[MemSpec] = (),
    declassify0: frozenset[int] | set[int] = frozenset(),
    declassify1: frozenset[int] | set[int] = frozenset(),
    sharpen: Callable[[E.Expr, E.Expr, ParamType], bool] | None = None,
) -> ConeTyping:
    """Infer parametricity types over a paired cone.

    ``roots`` must include every state next/enable and write-port
    expression named by ``states``/``mems`` (matched across instances),
    so the bisimulation reaches them.  ``declassify*`` are ``id()`` sets
    of nets forced to ``UNIFORM`` (a pair is declassified only when
    *both* sides are listed, keeping the pairing honest); ``sharpen`` is
    the absint hook — consulted with the syntactic type before any pair
    is typed above ``UNIFORM``, it may prove the pair equal-valued
    (paired constants; a truncation-stable value whose wide instance
    provably fits below the narrow width).

    Raises :class:`PairMismatch` on structural divergence.
    """
    order, index = pair_nodes(roots0, roots1)
    state_by_name = {spec.name: spec for spec in states}
    mem_by_name = {spec.name: spec for spec in mems}

    def init_type(spec: StateSpec) -> ParamType:
        if spec.next0 is None:  # free (universally quantified) leaf
            return (
                ParamType.SLICEWISE
                if spec.width0 != spec.width1
                else ParamType.UNIFORM
            )
        if spec.init0 == spec.init1:
            return ParamType.CONST
        if spec.init1 % (1 << spec.width0) == spec.init0:
            return ParamType.SLICEWISE
        return ParamType.ENTANGLED

    env: dict[str, ParamType] = {spec.name: init_type(spec) for spec in states}
    mem_env: dict[str, ParamType] = {
        spec.name: (ParamType.CONST if spec.init_equal else ParamType.ENTANGLED)
        for spec in mems
    }

    def free_leaf(n0: E.Expr, n1: E.Expr) -> ParamType:
        return (
            ParamType.SLICEWISE if n0.width != n1.width else ParamType.UNIFORM
        )

    def eval_all() -> list[ParamType]:
        result: list[ParamType] = []

        # the joined type of a writable memory's contents is fixed for
        # one evaluation pass; folding it per MemRead pair would be
        # quadratic in word count (the DLX data memory has thousands)
        mem_word: dict[str, ParamType] = {
            spec.name: join(
                mem_env[spec.name], *(env[var] for var in spec.word_vars)
            )
            for spec in mems
        }

        def t(c0: E.Expr, c1: E.Expr) -> ParamType:
            return result[index[(id(c0), id(c1))]]

        for n0, n1 in order:
            scaled = n0.width != n1.width
            computed: ParamType
            if isinstance(n0, E.Const):
                if n0.value == n1.value:
                    computed = ParamType.CONST
                elif n1.value % (1 << n0.width) == n0.value:
                    computed = ParamType.SLICEWISE  # e.g. a folded ~mask
                else:
                    computed = ParamType.ENTANGLED
            elif isinstance(n0, E.Input):
                computed = free_leaf(n0, n1)
            elif isinstance(n0, E.RegRead):
                computed = (
                    env[n0.name]
                    if n0.name in state_by_name
                    else free_leaf(n0, n1)
                )
            elif isinstance(n0, E.MemRead):
                t_addr = t(n0.addr, n1.addr)
                if t_addr > ParamType.UNIFORM:
                    computed = ParamType.ENTANGLED
                else:
                    spec = mem_by_name.get(n0.mem)
                    if spec is None:
                        base = free_leaf(n0, n1)
                    elif spec.rom:
                        base = mem_env[n0.mem]
                        # fixed, equal contents read at a uniform address
                        # give the *same word* in every member
                        if base is ParamType.CONST and t_addr > ParamType.CONST:
                            base = ParamType.UNIFORM
                    else:
                        base = mem_word[n0.mem]
                    computed = join(base, t_addr)
            elif isinstance(n0, E.Unary):
                ta = t(n0.a, n1.a)
                if n0.op in ("NOT", "NEG"):
                    if not scaled:
                        computed = ta
                    elif ta is ParamType.ENTANGLED:
                        computed = ParamType.ENTANGLED
                    else:
                        # complement flips the (width-dependent) high bits
                        computed = join(ta, ParamType.SLICEWISE)
                elif n0.op in _REDUCTIONS:
                    child_scaled = n0.a.width != n1.a.width
                    if not child_scaled:
                        computed = ta
                    elif n0.op == "REDAND":
                        # extra zero bits flip the conjunction
                        computed = ParamType.ENTANGLED
                    elif ta <= ParamType.UNIFORM:
                        computed = ta  # OR/XOR over extra zero bits
                    else:
                        computed = ParamType.ENTANGLED
                else:  # pragma: no cover - exhaustive over UNARY_OPS
                    computed = ParamType.ENTANGLED
            elif isinstance(n0, E.Binary):
                ta, tb = t(n0.a, n1.a), t(n0.b, n1.b)
                j = join(ta, tb)
                if n0.op in _BITWISE:
                    computed = j
                elif n0.op in _ARITH:
                    if j is ParamType.ENTANGLED:
                        computed = ParamType.ENTANGLED
                    elif scaled:
                        # carries may cross the narrow instance's MSB
                        computed = join(j, ParamType.SLICEWISE)
                    else:
                        computed = j
                elif n0.op == "SHL":
                    if tb > ParamType.UNIFORM or j is ParamType.ENTANGLED:
                        computed = ParamType.ENTANGLED
                    elif scaled:
                        computed = join(j, ParamType.SLICEWISE)
                    else:
                        computed = j
                elif n0.op in ("LSHR", "ASHR"):
                    a_scaled = n0.a.width != n1.a.width
                    if tb > ParamType.UNIFORM:
                        computed = ParamType.ENTANGLED
                    elif not a_scaled:
                        computed = j
                    elif n0.op == "LSHR" and ta <= ParamType.UNIFORM:
                        computed = j  # shifting down extra zero bits
                    else:
                        # upper (width-dependent) bits flow downward
                        computed = ParamType.ENTANGLED
                elif n0.op in _UNSIGNED_CMP:
                    computed = (
                        j if j <= ParamType.UNIFORM else ParamType.ENTANGLED
                    )
                elif n0.op in _SIGNED_CMP:
                    operands_scaled = (
                        n0.a.width != n1.a.width or n0.b.width != n1.b.width
                    )
                    if j <= ParamType.UNIFORM and not operands_scaled:
                        computed = j
                    else:
                        # the sign bit moves with the width
                        computed = ParamType.ENTANGLED
                else:  # pragma: no cover - exhaustive over BINARY_OPS
                    computed = ParamType.ENTANGLED
            elif isinstance(n0, E.Mux):
                if t(n0.sel, n1.sel) <= ParamType.UNIFORM:
                    computed = join(t(n0.then, n1.then), t(n0.els, n1.els))
                else:
                    computed = ParamType.ENTANGLED
            elif isinstance(n0, E.Concat):
                # a dropped all-zero head run (zext degenerate at the
                # narrow width) preserves the integer value, so the rule
                # over the *aligned* runs applies unchanged
                runs0, runs1 = _align_runs(n0, n1)
                j = join(*(t(p0, p1) for (p0, _), (p1, _) in zip(runs0, runs1)))
                body_stable = all(
                    c0 == c1 and p0.width == p1.width
                    for (p0, c0), (p1, c1) in zip(runs0[1:], runs1[1:])
                )
                head0, head_count0 = runs0[0]
                head1, head_count1 = runs1[0]
                head_scaled = (
                    head_count0 != head_count1 or head0.width != head1.width
                )
                if not body_stable or j is ParamType.ENTANGLED:
                    computed = ParamType.ENTANGLED
                elif not head_scaled:
                    computed = j
                elif (
                    isinstance(head0, E.Const)
                    and head0.value == 0
                    and isinstance(head1, E.Const)
                    and head1.value == 0
                ):
                    computed = j  # zero-extension preserves the value
                else:
                    # sign replication and friends: per-position stable
                    computed = join(j, ParamType.SLICEWISE)
            elif isinstance(n0, E.Slice):
                ta = t(n0.a, n1.a)
                if ta <= ParamType.UNIFORM:
                    computed = ta
                elif ta is ParamType.SLICEWISE:
                    # a fixed window below the narrowest width of a
                    # truncation-stable value is the same in every member
                    computed = ParamType.UNIFORM
                else:
                    computed = ParamType.ENTANGLED
            else:  # pragma: no cover - exhaustive over the IR
                raise AssertionError(type(n0).__name__)

            if computed > ParamType.UNIFORM:
                if id(n0) in declassify0 and id(n1) in declassify1:
                    computed = ParamType.UNIFORM
                elif sharpen is not None and sharpen(n0, n1, computed):
                    computed = ParamType.UNIFORM
            result.append(computed)
        return result

    def decision(t: ParamType) -> bool:
        return t <= ParamType.UNIFORM

    types: list[ParamType] = []
    iterations = 0
    limit = 3 * max(1, len(states) + len(mems)) + 2
    while True:
        iterations += 1
        if iterations > limit:  # pragma: no cover - monotone, bounded
            raise AssertionError("parametricity fixpoint failed to converge")
        types = eval_all()

        def t_of(e0: E.Expr, e1: E.Expr) -> ParamType:
            return types[index[(id(e0), id(e1))]]

        changed = False
        for spec in states:
            if spec.next0 is None or spec.next1 is None:
                continue
            t_next = t_of(spec.next0, spec.next1)
            if (
                spec.enable0 is not None
                and spec.enable1 is not None
                and not decision(t_of(spec.enable0, spec.enable1))
            ):
                new = ParamType.ENTANGLED
            else:
                new = join(env[spec.name], t_next)
            if new != env[spec.name]:
                env[spec.name] = new
                changed = True
        for spec in mems:
            if spec.rom or not spec.ports0:
                continue
            new = mem_env[spec.name]
            for (en0, addr0, data0), (en1, addr1, data1) in zip(
                spec.ports0, spec.ports1
            ):
                if decision(t_of(en0, en1)) and decision(t_of(addr0, addr1)):
                    new = join(new, t_of(data0, data1))
                else:
                    new = ParamType.ENTANGLED
            if new != mem_env[spec.name]:
                mem_env[spec.name] = new
                changed = True
        if not changed:
            break

    return ConeTyping(
        order=order,
        index=index,
        types=types,
        env={**env, **{f"mem:{k}": v for k, v in mem_env.items()}},
        iterations=iterations,
    )
