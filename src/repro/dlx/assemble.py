"""A small two-pass DLX assembler.

Syntax (one instruction or label per line; ``;`` and ``#`` start comments)::

    start:  addi r1, r0, 10
    loop:   subi r1, r1, 1
            bnez r1, loop
            nop               ; branch delay slot
            lw   r2, 8(r3)
            sw   4(r3), r2
            jal  subroutine
            nop
    halt:   j halt
            nop

Registers are ``r0`` .. ``r31``.  Immediates are decimal or ``0x`` hex.
Branch/jump targets may be labels (encoded as delay-slot-relative offsets,
``target - (pc + 4)``) or numeric byte offsets.  ``.org ADDR`` moves the
location counter (gaps fill with NOP); ``.word VALUE`` emits raw words.

Pseudo-instructions: ``nop``, ``li rd, imm32`` (expands to LHI+ORI when
needed), ``move rd, rs``.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import isa


class AssemblerError(ValueError):
    """Raised for malformed assembly input."""


@dataclass
class _Pending:
    """One instruction awaiting label resolution."""

    mnemonic: str
    operands: list[str]
    address: int  # byte address
    line: int


_R_TYPE = {
    "add": isa.F_ADD,
    "sub": isa.F_SUB,
    "and": isa.F_AND,
    "or": isa.F_OR,
    "xor": isa.F_XOR,
    "sll": isa.F_SLL,
    "srl": isa.F_SRL,
    "sra": isa.F_SRA,
    "slt": isa.F_SLT,
    "sltu": isa.F_SLTU,
    "seq": isa.F_SEQ,
    "sne": isa.F_SNE,
    "mult": isa.F_MULT,
}

_I_TYPE = {
    "addi": isa.OP_ADDI,
    "subi": isa.OP_SUBI,
    "andi": isa.OP_ANDI,
    "ori": isa.OP_ORI,
    "xori": isa.OP_XORI,
    "slti": isa.OP_SLTI,
    "sltui": isa.OP_SLTUI,
    "seqi": isa.OP_SEQI,
    "snei": isa.OP_SNEI,
}

_LOADS = {
    "lb": isa.OP_LB,
    "lbu": isa.OP_LBU,
    "lh": isa.OP_LH,
    "lhu": isa.OP_LHU,
    "lw": isa.OP_LW,
}

_STORES = {"sb": isa.OP_SB, "sh": isa.OP_SH, "sw": isa.OP_SW}


def _register(token: str, line: int) -> int:
    token = token.strip().lower()
    if not token.startswith("r"):
        raise AssemblerError(f"line {line}: expected register, got {token!r}")
    try:
        number = int(token[1:])
    except ValueError as exc:
        raise AssemblerError(f"line {line}: bad register {token!r}") from exc
    if not 0 <= number < isa.REGS:
        raise AssemblerError(f"line {line}: register {token!r} out of range")
    return number


def _number(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"line {line}: bad number {token!r}") from exc


def _mem_operand(token: str, line: int) -> tuple[int, str]:
    """Parse ``imm(rN)``; returns (register, immediate-text)."""
    token = token.strip()
    if "(" not in token or not token.endswith(")"):
        raise AssemblerError(
            f"line {line}: expected imm(reg) memory operand, got {token!r}"
        )
    imm_text, reg_text = token[:-1].split("(", 1)
    return _register(reg_text, line), imm_text.strip() or "0"


class Assembler:
    """Two-pass assembler producing a word list from byte address 0."""

    def __init__(self) -> None:
        self.labels: dict[str, int] = {}
        self.words: list[int] = []
        self._pending: list[_Pending] = []

    def assemble(self, source: str) -> list[int]:
        self._first_pass(source)
        self._second_pass()
        return self.words

    # -- pass 1: layout ---------------------------------------------------------

    def _emit(self, word: int | None, pending: _Pending | None = None) -> None:
        if pending is not None:
            self._pending.append(pending)
            self.words.append(0)
        else:
            assert word is not None
            self.words.append(word & 0xFFFFFFFF)

    def _first_pass(self, source: str) -> None:
        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            while ":" in line:
                label, line = line.split(":", 1)
                label = label.strip()
                if not label.isidentifier():
                    raise AssemblerError(
                        f"line {line_number}: bad label {label!r}"
                    )
                if label in self.labels:
                    raise AssemblerError(
                        f"line {line_number}: duplicate label {label!r}"
                    )
                self.labels[label] = len(self.words) * 4
                line = line.strip()
            if not line:
                continue
            self._instruction(line, line_number)

    def _instruction(self, line: str, line_number: int) -> None:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = (
            [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
        )

        if mnemonic == ".org":
            target = _number(operands[0], line_number)
            if target % 4 or target < len(self.words) * 4:
                raise AssemblerError(
                    f"line {line_number}: bad .org target {target:#x}"
                )
            while len(self.words) * 4 < target:
                self._emit(isa.NOP)
            return
        if mnemonic == ".word":
            for op in operands:
                self._emit(_number(op, line_number))
            return
        if mnemonic == "nop":
            self._emit(isa.NOP)
            return
        if mnemonic == "move":
            rd = _register(operands[0], line_number)
            rs = _register(operands[1], line_number)
            self._emit(isa.encode_i(isa.OP_ADDI, rd, rs, 0))
            return
        if mnemonic == "li":
            rd = _register(operands[0], line_number)
            value = _number(operands[1], line_number) & 0xFFFFFFFF
            if value < 0x8000:
                self._emit(isa.encode_i(isa.OP_ADDI, rd, 0, value))
            else:
                self._emit(isa.encode_i(isa.OP_LHI, rd, 0, value >> 16))
                if value & 0xFFFF:
                    self._emit(isa.encode_i(isa.OP_ORI, rd, rd, value & 0xFFFF))
            return

        if mnemonic in _R_TYPE:
            rd = _register(operands[0], line_number)
            ra = _register(operands[1], line_number)
            rb = _register(operands[2], line_number)
            self._emit(isa.encode_r(_R_TYPE[mnemonic], rd, ra, rb))
            return
        if mnemonic in _I_TYPE:
            rd = _register(operands[0], line_number)
            ra = _register(operands[1], line_number)
            imm = _number(operands[2], line_number)
            self._emit(isa.encode_i(_I_TYPE[mnemonic], rd, ra, imm))
            return
        if mnemonic == "lhi":
            rd = _register(operands[0], line_number)
            imm = _number(operands[1], line_number)
            self._emit(isa.encode_i(isa.OP_LHI, rd, 0, imm))
            return
        if mnemonic in _LOADS:
            rd = _register(operands[0], line_number)
            base, imm_text = _mem_operand(operands[1], line_number)
            self._emit(
                isa.encode_i(
                    _LOADS[mnemonic], rd, base, _number(imm_text, line_number)
                )
            )
            return
        if mnemonic in _STORES:
            base, imm_text = _mem_operand(operands[0], line_number)
            rd = _register(operands[1], line_number)
            self._emit(
                isa.encode_i(
                    _STORES[mnemonic], rd, base, _number(imm_text, line_number)
                )
            )
            return
        if mnemonic in ("beqz", "bnez"):
            self._emit(
                None,
                _Pending(mnemonic, operands, len(self.words) * 4, line_number),
            )
            return
        if mnemonic in ("j", "jal"):
            self._emit(
                None,
                _Pending(mnemonic, operands, len(self.words) * 4, line_number),
            )
            return
        if mnemonic == "jr":
            self._emit(isa.encode_i(isa.OP_JR, 0, _register(operands[0], line_number), 0))
            return
        if mnemonic == "jalr":
            self._emit(
                isa.encode_i(isa.OP_JALR, 0, _register(operands[0], line_number), 0)
            )
            return
        if mnemonic == "trap":
            imm = _number(operands[0], line_number) if operands else 0
            self._emit(isa.encode_i(isa.OP_TRAP, 0, 0, imm))
            return
        if mnemonic == "rfe":
            self._emit(isa.encode_i(isa.OP_RFE, 0, 0, 0))
            return
        raise AssemblerError(f"line {line_number}: unknown mnemonic {mnemonic!r}")

    # -- pass 2: resolve labels ----------------------------------------------------

    def _offset(self, token: str, address: int, line: int) -> int:
        token = token.strip()
        if token in self.labels:
            # delayed branch: offsets are relative to the delay slot
            return self.labels[token] - (address + 4)
        return _number(token, line)

    def _second_pass(self) -> None:
        for pending in self._pending:
            index = pending.address // 4
            if pending.mnemonic in ("beqz", "bnez"):
                reg = _register(pending.operands[0], pending.line)
                offset = self._offset(
                    pending.operands[1], pending.address, pending.line
                )
                op = isa.OP_BEQZ if pending.mnemonic == "beqz" else isa.OP_BNEZ
                self.words[index] = isa.encode_i(op, 0, reg, offset)
            else:
                offset = self._offset(
                    pending.operands[0], pending.address, pending.line
                )
                op = isa.OP_J if pending.mnemonic == "j" else isa.OP_JAL
                self.words[index] = isa.encode_j(op, offset)


def assemble(source: str) -> list[int]:
    """Assemble DLX source into a list of instruction words."""
    return Assembler().assemble(source)


def labels_of(source: str) -> dict[str, int]:
    """Assemble and return the label table (byte addresses)."""
    assembler = Assembler()
    assembler.assemble(source)
    return assembler.labels
