"""The DLX case study: ISA, assembler, reference simulator and the
prepared five-stage machine of the paper's Section 4.2."""

from . import isa, programs
from .assemble import Assembler, AssemblerError, assemble, labels_of
from .disassemble import disassemble, disassemble_word
from .prepared import SISR_DEFAULT, DlxConfig, build_dlx_machine
from .reference import DlxReference, ReferenceState
from .speculative import PREDICTORS, DlxSpecConfig, build_dlx_spec_machine
from .superpipe import SuperPipeConfig, build_superpipelined_dlx

__all__ = [
    "Assembler",
    "AssemblerError",
    "DlxConfig",
    "DlxReference",
    "DlxSpecConfig",
    "PREDICTORS",
    "ReferenceState",
    "SISR_DEFAULT",
    "SuperPipeConfig",
    "assemble",
    "build_dlx_machine",
    "build_dlx_spec_machine",
    "build_superpipelined_dlx",
    "disassemble",
    "disassemble_word",
    "isa",
    "labels_of",
    "programs",
]
