"""A superpipelined DLX: configurable execute and memory depth.

The paper's Section 4.2 remark — forwarding "gets slow with larger
pipelines" — applied to the real case study rather than a synthetic
machine: this builder stretches the 5-stage DLX to ``3 + ex_stages +
mem_stages`` stages::

    0 IF | 1 ID | EX1..EXe | MEM1..MEMm | WB

The ALU computes in the *last* EX stage (operands travel along), the
data memory commits/reads in the last MEM stage, and ``C`` passes through
every stage in between.  Consequences the experiments measure:

* the forwarding networks get one hit stage (and one ``=?`` comparator)
  per added stage;
* ALU results become valid only after EXe, so dependent instructions
  interlock for ``ex_stages - 1`` extra cycles;
* the load-use penalty grows by ``ex_stages + mem_stages - 2`` cycles.

Delayed branches, byte/half memory access and the full integer ISA are
inherited unchanged; interrupts and the multi-cycle multiplier are left
to the 5-stage builder.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import expr as E
from ..machine.prepared import PreparedMachine
from . import datapath as dp
from . import isa

WORD = isa.WORD


@dataclass(frozen=True)
class SuperPipeConfig:
    """Depth and sizing of the superpipelined DLX."""

    ex_stages: int = 2
    mem_stages: int = 1
    imem_addr_width: int = 8
    dmem_addr_width: int = 6

    def __post_init__(self) -> None:
        if self.ex_stages < 1 or self.mem_stages < 1:
            raise ValueError("ex_stages and mem_stages must be at least 1")

    @property
    def n_stages(self) -> int:
        return 3 + self.ex_stages + self.mem_stages

    @property
    def ex_last(self) -> int:
        """The stage whose f produces the ALU result."""
        return 1 + self.ex_stages

    @property
    def mem_last(self) -> int:
        """The stage that accesses the data memory."""
        return 1 + self.ex_stages + self.mem_stages

    @property
    def wb(self) -> int:
        return self.n_stages - 1


def build_superpipelined_dlx(
    program: list[int],
    data: dict[int, int] | None = None,
    config: SuperPipeConfig | None = None,
) -> PreparedMachine:
    """Build the prepared superpipelined DLX."""
    config = config or SuperPipeConfig()
    imem_size = 1 << config.imem_addr_width
    if len(program) > imem_size:
        raise ValueError("program exceeds instruction memory")

    n = config.n_stages
    ex_last = config.ex_last
    mem_last = config.mem_last
    wb = config.wb
    machine = PreparedMachine(f"dlx-sp{n}", n)

    # ---- state -------------------------------------------------------------
    machine.add_register("DPC", WORD, first=2, init=0, visible=True)
    machine.add_register("PCP", WORD, first=2, init=4, visible=True)
    machine.add_register("IR", WORD, first=1, last=wb, init=isa.NOP)
    machine.add_register("A", WORD, first=2, last=ex_last)
    machine.add_register("B", WORD, first=2, last=ex_last)
    machine.add_register("C", WORD, first=2, last=wb)
    machine.add_register("MAR", WORD, first=ex_last + 1, last=wb)
    machine.add_register("MDRw", WORD, first=ex_last + 1, last=mem_last)
    machine.add_register("MDRr", WORD, first=mem_last + 1)

    machine.add_register_file("GPR", addr_width=5, data_width=WORD, write_stage=wb)
    machine.add_register_file(
        "IMem",
        addr_width=config.imem_addr_width,
        data_width=WORD,
        write_stage=0,
        init={
            i: (program[i] if i < len(program) else isa.NOP)
            for i in range(imem_size)
        },
        read_only=True,
    )
    machine.add_register_file(
        "DMem",
        addr_width=config.dmem_addr_width,
        data_width=WORD,
        write_stage=mem_last,
        init=dict(data or {}),
    )

    # ---- IF -----------------------------------------------------------------
    dpc = machine.read_last("DPC")
    fetch_index = E.bits(dpc, 2, 2 + config.imem_addr_width - 1)
    machine.set_output(0, "IR", machine.read_file("IMem", fetch_index))

    # ---- ID -------------------------------------------------------------------
    ir1 = machine.read("IR", 1)
    dpc1 = machine.read_last("DPC")
    pcp1 = machine.read_last("PCP")
    a_read = machine.read_file("GPR", dp.rs1(ir1))
    b_read = machine.read_file("GPR", dp.b_operand_addr(ir1))
    machine.set_output(1, "A", a_read)
    machine.set_output(1, "B", b_read)
    machine.set_output(1, "DPC", pcp1)
    machine.set_output(1, "PCP", dp.next_pcp(ir1, dpc1, pcp1, a_read))

    lhi_value = E.concat(E.bits(ir1, 0, 15), E.const(16, 0))
    machine.set_output(
        1,
        "C",
        E.mux(dp.is_lhi(ir1), lhi_value, dp.link_value(dpc1)),
        we=E.bor(dp.is_lhi(ir1), dp.is_link(ir1)),
    )

    # ---- EX1 .. EXe: operands travel, the last stage computes ------------------
    ir_ex = machine.read("IR", ex_last)
    a_ex = machine.read("A", ex_last)
    b_ex = machine.read("B", ex_last)
    machine.set_output(
        ex_last,
        "C",
        dp.alu_result(ir_ex, a_ex, dp.ex_b_operand(ir_ex, b_ex)),
        we=dp.is_alu(ir_ex),
    )
    machine.set_output(ex_last, "MAR", E.add(a_ex, dp.imm16_sext(ir_ex)))
    machine.set_output(ex_last, "MDRw", b_ex)

    # ---- MEM1 .. MEMm: the last stage accesses memory ----------------------------
    ir_mem = machine.read("IR", mem_last)
    mar_mem = machine.read("MAR", mem_last)
    mdrw_mem = machine.read("MDRw", mem_last)
    word_index = E.bits(mar_mem, 2, 2 + config.dmem_addr_width - 1)
    byte_offset = E.bits(mar_mem, 0, 1)
    mem_word = machine.read_file("DMem", word_index)
    machine.set_output(mem_last, "MDRr", mem_word)
    machine.set_regfile_write(
        "DMem",
        data=dp.store_merge(ir_mem, mem_word, mdrw_mem, byte_offset),
        we=dp.is_store(ir_mem),
        wa=word_index,
        compute_stage=mem_last,
    )

    # ---- WB -----------------------------------------------------------------------
    ir_wb = machine.read("IR", wb)
    c_wb = machine.read("C", wb)
    mdrr_wb = machine.read("MDRr", wb)
    mar_wb = machine.read("MAR", wb)
    loaded = dp.shift4load(ir_wb, mdrr_wb, E.bits(mar_wb, 0, 1))
    machine.set_regfile_write(
        "GPR",
        data=E.mux(dp.is_load(ir_wb), loaded, c_wb),
        we=dp.writes_gpr(ir1),
        wa=dp.gpr_dest(ir1),
        compute_stage=1,
    )

    # ---- forwarding registers: C in every intermediate stage ------------------------
    for stage in range(2, wb):
        machine.add_forwarding_register("GPR", "C", stage)

    machine.validate()
    return machine
