"""The DLX instruction set (integer subset, as in the paper's case study).

The machine follows Hennessy & Patterson's DLX [10] as prepared in
Mueller & Paul [20]: a 32-bit RISC with one branch delay slot and no
floating point unit.  Field layout:

* **R-type** (``opcode == 0``): ``opcode(6) rs1(5) rs2(5) rd(5) sa(5) funct(6)``
* **I-type**: ``opcode(6) rs1(5) rd(5) imm(16)``
* **J-type**: ``opcode(6) imm(26)``

Branch/jump offsets are relative to the *delay-slot* instruction
(``PC + 4 + imm``), and the link value of JAL/JALR is ``PC + 8`` (the
instruction after the delay slot) — standard delayed-branch semantics.

Encodings are our own consistent assignment (binary compatibility with
any particular DLX assembler is not a goal of the reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass

WORD = 32
REGS = 32

# ---------------------------------------------------------------------------
# Opcodes
# ---------------------------------------------------------------------------

OP_SPECIAL = 0x00  # R-type, operation in funct
OP_J = 0x02
OP_JAL = 0x03
OP_BEQZ = 0x04
OP_BNEZ = 0x05
OP_ADDI = 0x08
OP_SUBI = 0x0A
OP_ANDI = 0x0C
OP_ORI = 0x0D
OP_XORI = 0x0E
OP_LHI = 0x0F
OP_RFE = 0x10
OP_TRAP = 0x11
OP_SLTI = 0x12
OP_SLTUI = 0x13
OP_SEQI = 0x18
OP_SNEI = 0x19
OP_JR = 0x16
OP_JALR = 0x17
OP_LB = 0x20
OP_LH = 0x21
OP_LW = 0x23
OP_LBU = 0x24
OP_LHU = 0x25
OP_SB = 0x28
OP_SH = 0x29
OP_SW = 0x2B

# R-type functs
F_SLL = 0x04
F_SRL = 0x06
F_SRA = 0x07
F_ADD = 0x20
F_SUB = 0x22
F_AND = 0x24
F_OR = 0x25
F_XOR = 0x26
F_SLT = 0x2A
F_SLTU = 0x2B
F_SEQ = 0x28
F_SNE = 0x29
F_MULT = 0x18  # low word of the product (multi-cycle in hardware)

LOAD_OPS = frozenset({OP_LB, OP_LH, OP_LW, OP_LBU, OP_LHU})
STORE_OPS = frozenset({OP_SB, OP_SH, OP_SW})
BRANCH_OPS = frozenset({OP_BEQZ, OP_BNEZ})
JUMP_OPS = frozenset({OP_J, OP_JAL, OP_JR, OP_JALR})
ALU_IMM_OPS = frozenset(
    {OP_ADDI, OP_SUBI, OP_ANDI, OP_ORI, OP_XORI, OP_SLTI, OP_SLTUI, OP_SEQI, OP_SNEI}
)
# ALU-immediate ops whose immediate is zero-extended (logical ops).
ZEXT_IMM_OPS = frozenset({OP_ANDI, OP_ORI, OP_XORI})

R_FUNCTS = frozenset(
    {
        F_SLL, F_SRL, F_SRA, F_ADD, F_SUB, F_AND, F_OR, F_XOR,
        F_SLT, F_SLTU, F_SEQ, F_SNE, F_MULT,
    }
)


def _field(value: int, width: int, what: str) -> int:
    if not 0 <= value < (1 << width):
        raise ValueError(f"{what} value {value} does not fit in {width} bits")
    return value


def _simm(value: int, width: int, what: str) -> int:
    low = -(1 << (width - 1))
    high = (1 << width) - 1  # accept both signed and unsigned spellings
    if not low <= value <= high:
        raise ValueError(f"{what} value {value} out of range for {width} bits")
    return value & ((1 << width) - 1)


def encode_r(funct: int, rd: int, rs1: int, rs2: int, sa: int = 0) -> int:
    """Encode an R-type instruction."""
    return (
        (OP_SPECIAL << 26)
        | (_field(rs1, 5, "rs1") << 21)
        | (_field(rs2, 5, "rs2") << 16)
        | (_field(rd, 5, "rd") << 11)
        | (_field(sa, 5, "sa") << 6)
        | _field(funct, 6, "funct")
    )


def encode_i(opcode: int, rd: int, rs1: int, imm: int) -> int:
    """Encode an I-type instruction (imm accepts signed or unsigned)."""
    return (
        (_field(opcode, 6, "opcode") << 26)
        | (_field(rs1, 5, "rs1") << 21)
        | (_field(rd, 5, "rd") << 16)
        | _simm(imm, 16, "imm")
    )


def encode_j(opcode: int, imm: int) -> int:
    """Encode a J-type instruction (imm accepts signed or unsigned)."""
    return (_field(opcode, 6, "opcode") << 26) | _simm(imm, 26, "imm")


@dataclass(frozen=True)
class Decoded:
    """All fields of one instruction word."""

    word: int

    @property
    def opcode(self) -> int:
        return (self.word >> 26) & 0x3F

    @property
    def rs1(self) -> int:
        return (self.word >> 21) & 0x1F

    @property
    def rs2(self) -> int:
        return (self.word >> 16) & 0x1F

    @property
    def rd_r(self) -> int:
        return (self.word >> 11) & 0x1F

    @property
    def rd_i(self) -> int:
        return (self.word >> 16) & 0x1F

    @property
    def sa(self) -> int:
        return (self.word >> 6) & 0x1F

    @property
    def funct(self) -> int:
        return self.word & 0x3F

    @property
    def imm16(self) -> int:
        return self.word & 0xFFFF

    @property
    def imm16_signed(self) -> int:
        value = self.imm16
        return value - 0x10000 if value & 0x8000 else value

    @property
    def imm26_signed(self) -> int:
        value = self.word & 0x3FFFFFF
        return value - (1 << 26) if value & (1 << 25) else value

    # -- classification ------------------------------------------------------

    @property
    def is_rtype(self) -> bool:
        return self.opcode == OP_SPECIAL and self.funct in R_FUNCTS

    @property
    def is_load(self) -> bool:
        return self.opcode in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.opcode in STORE_OPS

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPS

    @property
    def is_jump(self) -> bool:
        return self.opcode in JUMP_OPS

    @property
    def is_alu_imm(self) -> bool:
        return self.opcode in ALU_IMM_OPS

    @property
    def is_lhi(self) -> bool:
        return self.opcode == OP_LHI

    @property
    def is_link(self) -> bool:
        return self.opcode in (OP_JAL, OP_JALR)

    @property
    def is_trap(self) -> bool:
        return self.opcode == OP_TRAP

    @property
    def is_rfe(self) -> bool:
        return self.opcode == OP_RFE

    @property
    def writes_gpr(self) -> bool:
        """Does this instruction write a general-purpose register?

        Writes of register 0 are suppressed architecturally (GPR[0] == 0).
        """
        return self.gpr_dest != 0

    @property
    def gpr_dest(self) -> int:
        """Destination register number (0 when the instruction writes none)."""
        if self.is_rtype:
            return self.rd_r
        if self.is_alu_imm or self.is_lhi or self.is_load:
            return self.rd_i
        if self.opcode in (OP_JAL, OP_JALR):
            return 31
        return 0


NOP = encode_i(OP_ADDI, 0, 0, 0)  # addi r0, r0, 0
