"""DLX disassembler.

Produces assembler-compatible text: ``assemble(disassemble(words))``
round-trips for every encodable instruction (property-tested).  Used by
the CLI to show program listings and by debugging sessions to read
instruction registers out of waveforms.
"""

from __future__ import annotations

from . import isa

_R_NAMES = {
    isa.F_ADD: "add",
    isa.F_SUB: "sub",
    isa.F_AND: "and",
    isa.F_OR: "or",
    isa.F_XOR: "xor",
    isa.F_SLL: "sll",
    isa.F_SRL: "srl",
    isa.F_SRA: "sra",
    isa.F_SLT: "slt",
    isa.F_SLTU: "sltu",
    isa.F_SEQ: "seq",
    isa.F_SNE: "sne",
    isa.F_MULT: "mult",
}

_I_NAMES = {
    isa.OP_ADDI: "addi",
    isa.OP_SUBI: "subi",
    isa.OP_ANDI: "andi",
    isa.OP_ORI: "ori",
    isa.OP_XORI: "xori",
    isa.OP_SLTI: "slti",
    isa.OP_SLTUI: "sltui",
    isa.OP_SEQI: "seqi",
    isa.OP_SNEI: "snei",
}

_LOAD_NAMES = {
    isa.OP_LB: "lb",
    isa.OP_LBU: "lbu",
    isa.OP_LH: "lh",
    isa.OP_LHU: "lhu",
    isa.OP_LW: "lw",
}

_STORE_NAMES = {isa.OP_SB: "sb", isa.OP_SH: "sh", isa.OP_SW: "sw"}


def disassemble_word(word: int) -> str:
    """Disassemble one instruction word to assembler syntax.

    Unknown encodings render as ``.word 0x...`` (which the assembler
    accepts back verbatim).
    """
    instr = isa.Decoded(word & 0xFFFFFFFF)
    op = instr.opcode
    if word == isa.NOP:
        return "nop"
    if instr.is_rtype and instr.funct in _R_NAMES and instr.sa == 0:
        name = _R_NAMES[instr.funct]
        return f"{name} r{instr.rd_r}, r{instr.rs1}, r{instr.rs2}"
    if op in _I_NAMES:
        return f"{_I_NAMES[op]} r{instr.rd_i}, r{instr.rs1}, {instr.imm16_signed}"
    if op == isa.OP_LHI and instr.rs1 == 0:
        return f"lhi r{instr.rd_i}, {instr.imm16:#x}"
    if op in _LOAD_NAMES:
        return f"{_LOAD_NAMES[op]} r{instr.rd_i}, {instr.imm16_signed}(r{instr.rs1})"
    if op in _STORE_NAMES:
        return f"{_STORE_NAMES[op]} {instr.imm16_signed}(r{instr.rs1}), r{instr.rd_i}"
    if op == isa.OP_BEQZ and instr.rd_i == 0:
        return f"beqz r{instr.rs1}, {instr.imm16_signed}"
    if op == isa.OP_BNEZ and instr.rd_i == 0:
        return f"bnez r{instr.rs1}, {instr.imm16_signed}"
    if op == isa.OP_J:
        return f"j {instr.imm26_signed}"
    if op == isa.OP_JAL:
        return f"jal {instr.imm26_signed}"
    if op == isa.OP_JR and instr.rd_i == 0 and instr.imm16 == 0:
        return f"jr r{instr.rs1}"
    if op == isa.OP_JALR and instr.rd_i == 0 and instr.imm16 == 0:
        return f"jalr r{instr.rs1}"
    if op == isa.OP_TRAP and instr.rs1 == 0 and instr.rd_i == 0:
        return f"trap {instr.imm16}"
    if op == isa.OP_RFE and (word & 0x03FFFFFF) == 0:
        return "rfe"
    return f".word {word & 0xFFFFFFFF:#010x}"


def disassemble(words: list[int], base: int = 0) -> str:
    """Disassemble a program; one ``addr: text`` line per word."""
    lines = []
    for index, word in enumerate(words):
        lines.append(f"{base + 4 * index:#06x}:  {disassemble_word(word)}")
    return "\n".join(lines)
