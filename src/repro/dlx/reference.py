"""ISA-level DLX reference simulator (the specification machine).

Executes one instruction per step with delayed-branch semantics over the
architectural state ``(GPR, DMem, DPC, PCP, EDPC, EPCP)``.  It records
the architectural write streams (GPR and DMem) that the hardware
machines' commit probes must reproduce, which makes it the oracle for
the data-consistency experiments.

Interrupt semantics (matching the speculative hardware): before an
instruction executes, if it is TRAP or the external interrupt predicate
fires for it, the instruction is *not* executed; ``(EDPC, EPCP)`` save
the ``(DPC, PCP)`` pair and control transfers to the handler at ``SISR``.
``RFE`` restores the saved pair (re-executing the interrupted
instruction unless the handler adjusted ``EDPC``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hdl.bitvec import from_signed, mask, to_signed
from . import isa
from .prepared import SISR_DEFAULT

WORD_MASK = mask(32)


@dataclass
class ReferenceState:
    """Architectural state of the specification machine."""

    gpr: list[int] = field(default_factory=lambda: [0] * 32)
    dmem: dict[int, int] = field(default_factory=dict)  # word index -> word
    dpc: int = 0
    pcp: int = 4
    edpc: int = 0
    epcp: int = 0

    def copy(self) -> "ReferenceState":
        return ReferenceState(
            gpr=list(self.gpr),
            dmem=dict(self.dmem),
            dpc=self.dpc,
            pcp=self.pcp,
            edpc=self.edpc,
            epcp=self.epcp,
        )


class DlxReference:
    """Step-at-a-time DLX interpreter with write-stream recording."""

    def __init__(
        self,
        program: list[int],
        data: dict[int, int] | None = None,
        imem_addr_width: int = 10,
        dmem_addr_width: int = 10,
        interrupts: bool = False,
        sisr: int = SISR_DEFAULT,
        irq: Callable[[int, "ReferenceState"], bool] | None = None,
        delay_slot: bool = True,
    ) -> None:
        self.imem_size = 1 << imem_addr_width
        self.dmem_mask = mask(dmem_addr_width)
        if len(program) > self.imem_size:
            raise ValueError("program exceeds instruction memory")
        self.imem = [
            program[i] if i < len(program) else isa.NOP
            for i in range(self.imem_size)
        ]
        self.state = ReferenceState(dmem=dict(data or {}))
        self.interrupts = interrupts
        self.sisr = sisr
        # With delay_slot=False (the speculative machine's ISA) branches
        # and jumps take effect immediately and the link value is PC + 4;
        # the PCP register degenerates to "PC + 4".
        self.delay_slot = delay_slot
        # irq(instruction_index, state) -> external interrupt pending?
        self.irq = irq
        self.instructions = 0
        self.gpr_writes: list[tuple[int, int]] = []
        self.dmem_writes: list[tuple[int, int]] = []

    # -- helpers ----------------------------------------------------------------

    def _fetch(self, address: int) -> int:
        return self.imem[(address >> 2) & (self.imem_size - 1)]

    def _read_word(self, byte_address: int) -> int:
        return self.state.dmem.get((byte_address >> 2) & self.dmem_mask, 0)

    def _write_word(self, byte_address: int, word: int) -> None:
        index = (byte_address >> 2) & self.dmem_mask
        word &= WORD_MASK
        self.state.dmem[index] = word
        self.dmem_writes.append((index, word))

    def _write_gpr(self, reg: int, value: int) -> None:
        if reg == 0:
            return
        value &= WORD_MASK
        self.state.gpr[reg] = value
        self.gpr_writes.append((reg, value))

    # -- execution -----------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction (or take one interrupt)."""
        state = self.state
        word = self._fetch(state.dpc)
        instr = isa.Decoded(word)

        if self.interrupts:
            external = self.irq is not None and self.irq(self.instructions, state)
            if instr.is_trap or external:
                state.edpc = state.dpc
                state.epcp = state.pcp
                state.dpc = self.sisr & WORD_MASK
                state.pcp = (self.sisr + 4) & WORD_MASK
                self.instructions += 1
                return

        a = state.gpr[instr.rs1]
        b_addr = instr.rd_i if instr.is_store else instr.rs2
        b = state.gpr[b_addr]

        # control-flow destination (None: fall through); offsets are
        # relative to DPC + 4 under both sequencing models
        control: int | None = None
        link = (state.dpc + (8 if self.delay_slot else 4)) & WORD_MASK
        is_rfe = self.interrupts and instr.is_rfe

        if instr.is_rtype:
            self._write_gpr(instr.rd_r, self._alu_r(instr, a, b))
        elif instr.is_alu_imm:
            imm = (
                instr.imm16
                if instr.opcode in isa.ZEXT_IMM_OPS
                else instr.imm16_signed
            )
            self._write_gpr(instr.rd_i, self._alu_i(instr, a, imm))
        elif instr.is_lhi:
            self._write_gpr(instr.rd_i, (instr.imm16 << 16) & WORD_MASK)
        elif instr.is_load:
            address = (a + instr.imm16_signed) & WORD_MASK
            self._write_gpr(instr.rd_i, self._load(instr, address))
        elif instr.is_store:
            address = (a + instr.imm16_signed) & WORD_MASK
            self._store(instr, address, b)
        elif instr.is_branch:
            taken = (a == 0) if instr.opcode == isa.OP_BEQZ else (a != 0)
            if taken:
                control = (state.dpc + 4 + instr.imm16_signed) & WORD_MASK
        elif instr.opcode == isa.OP_J:
            control = (state.dpc + 4 + instr.imm26_signed) & WORD_MASK
        elif instr.opcode == isa.OP_JAL:
            control = (state.dpc + 4 + instr.imm26_signed) & WORD_MASK
            self._write_gpr(31, link)
        elif instr.opcode == isa.OP_JR:
            control = a
        elif instr.opcode == isa.OP_JALR:
            control = a
            self._write_gpr(31, link)
        # anything else: architectural NOP

        if self.delay_slot:
            if is_rfe:
                state.dpc = state.edpc
                state.pcp = state.epcp
            else:
                state.dpc = state.pcp
                state.pcp = (
                    control
                    if control is not None
                    else (state.pcp + 4) & WORD_MASK
                )
        else:
            if is_rfe:
                state.dpc = state.edpc
            else:
                state.dpc = (
                    control
                    if control is not None
                    else (state.dpc + 4) & WORD_MASK
                )
            state.pcp = (state.dpc + 4) & WORD_MASK
        self.instructions += 1

    def run(self, instructions: int) -> "DlxReference":
        for _ in range(instructions):
            self.step()
        return self

    # -- operation semantics ----------------------------------------------------------

    @staticmethod
    def _alu_op(funct: int, a: int, b: int) -> int:
        sa = to_signed(a, 32)
        sb = to_signed(b, 32)
        amount = b & 0x1F
        if funct == isa.F_ADD:
            return a + b
        if funct == isa.F_SUB:
            return a - b
        if funct == isa.F_AND:
            return a & b
        if funct == isa.F_OR:
            return a | b
        if funct == isa.F_XOR:
            return a ^ b
        if funct == isa.F_SLL:
            return a << amount
        if funct == isa.F_SRL:
            return a >> amount
        if funct == isa.F_SRA:
            return from_signed(sa >> amount, 32)
        if funct == isa.F_SLT:
            return int(sa < sb)
        if funct == isa.F_SLTU:
            return int(a < b)
        if funct == isa.F_SEQ:
            return int(a == b)
        if funct == isa.F_SNE:
            return int(a != b)
        if funct == isa.F_MULT:
            return a * b  # low 32 bits taken by the caller's mask
        raise ValueError(f"unknown funct {funct:#x}")

    def _alu_r(self, instr: isa.Decoded, a: int, b: int) -> int:
        return self._alu_op(instr.funct, a, b & WORD_MASK) & WORD_MASK

    _IMM_FUNCT = {
        isa.OP_ADDI: isa.F_ADD,
        isa.OP_SUBI: isa.F_SUB,
        isa.OP_ANDI: isa.F_AND,
        isa.OP_ORI: isa.F_OR,
        isa.OP_XORI: isa.F_XOR,
        isa.OP_SLTI: isa.F_SLT,
        isa.OP_SLTUI: isa.F_SLTU,
        isa.OP_SEQI: isa.F_SEQ,
        isa.OP_SNEI: isa.F_SNE,
    }

    def _alu_i(self, instr: isa.Decoded, a: int, imm: int) -> int:
        return self._alu_op(self._IMM_FUNCT[instr.opcode], a, imm & WORD_MASK) & WORD_MASK

    def _load(self, instr: isa.Decoded, address: int) -> int:
        word = self._read_word(address)
        shift = (address & 3) * 8
        shifted = word >> shift
        op = instr.opcode
        if op == isa.OP_LW:
            return word
        if op == isa.OP_LB:
            return from_signed(to_signed(shifted & 0xFF, 8), 32)
        if op == isa.OP_LBU:
            return shifted & 0xFF
        if op == isa.OP_LH:
            return from_signed(to_signed(shifted & 0xFFFF, 16), 32)
        if op == isa.OP_LHU:
            return shifted & 0xFFFF
        raise ValueError(f"unknown load {op:#x}")

    def _store(self, instr: isa.Decoded, address: int, value: int) -> None:
        op = instr.opcode
        if op == isa.OP_SW:
            self._write_word(address, value)
            return
        old = self._read_word(address)
        shift = (address & 3) * 8
        if op == isa.OP_SB:
            lane_mask = 0xFF << shift
        elif op == isa.OP_SH:
            lane_mask = 0xFFFF << shift
        else:
            raise ValueError(f"unknown store {op:#x}")
        merged = (old & ~lane_mask) | ((value << shift) & lane_mask)
        self._write_word(address, merged)
