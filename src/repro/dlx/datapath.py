"""Combinational datapath builders for the DLX (decode, ALU, load/store
alignment, next-PC logic).

Every function takes and returns :mod:`repro.hdl.expr` expressions; the
prepared machine (:mod:`repro.dlx.prepared`) wires them to register
instances.  Decoding happens per stage directly from the piped instruction
register ``IR.k`` (the paper's ``IR.2``/``IR.3`` instances), so no ad-hoc
control pipeline is needed.
"""

from __future__ import annotations

from ..hdl import expr as E
from . import isa

WORD = isa.WORD


# ---------------------------------------------------------------------------
# Field extraction
# ---------------------------------------------------------------------------


def opcode(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 26, 31)


def rs1(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 21, 25)


def rs2(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 16, 20)


def rd_r(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 11, 15)


def rd_i(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 16, 20)


def funct(ir: E.Expr) -> E.Expr:
    return E.bits(ir, 0, 5)


def imm16_sext(ir: E.Expr, word: int = WORD) -> E.Expr:
    return E.sext(E.bits(ir, 0, 15), word)


def imm16_zext(ir: E.Expr, word: int = WORD) -> E.Expr:
    return E.zext(E.bits(ir, 0, 15), word)


def imm26_sext(ir: E.Expr, word: int = WORD) -> E.Expr:
    return E.sext(E.bits(ir, 0, 25), word)


def _op_is(ir: E.Expr, *codes: int) -> E.Expr:
    return E.any_of(E.eq(opcode(ir), E.const(6, code)) for code in codes)


def _funct_is(ir: E.Expr, *codes: int) -> E.Expr:
    return E.any_of(E.eq(funct(ir), E.const(6, code)) for code in codes)


# ---------------------------------------------------------------------------
# Instruction classification
# ---------------------------------------------------------------------------


def is_rtype(ir: E.Expr) -> E.Expr:
    return E.band(
        E.eq(opcode(ir), E.const(6, isa.OP_SPECIAL)),
        _funct_is(ir, *sorted(isa.R_FUNCTS)),
    )


def is_load(ir: E.Expr) -> E.Expr:
    return _op_is(ir, *sorted(isa.LOAD_OPS))


def is_store(ir: E.Expr) -> E.Expr:
    return _op_is(ir, *sorted(isa.STORE_OPS))


def is_branch(ir: E.Expr) -> E.Expr:
    return _op_is(ir, *sorted(isa.BRANCH_OPS))


def is_alu_imm(ir: E.Expr) -> E.Expr:
    return _op_is(ir, *sorted(isa.ALU_IMM_OPS))


def is_lhi(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_LHI)


def is_link(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_JAL, isa.OP_JALR)


def is_jump_reg(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_JR, isa.OP_JALR)


def is_jump_imm(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_J, isa.OP_JAL)


def is_trap(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_TRAP)


def is_rfe(ir: E.Expr) -> E.Expr:
    return _op_is(ir, isa.OP_RFE)


def is_alu(ir: E.Expr) -> E.Expr:
    """Does the EX stage produce this instruction's GPR result?"""
    return E.bor(is_rtype(ir), is_alu_imm(ir))


def writes_gpr(ir: E.Expr) -> E.Expr:
    """GPR write enable (``f^w_GPRwe``, precomputed in decode).  Writes to
    register 0 are suppressed (GPR[0] is hardwired zero)."""
    writes = E.any_of(
        [is_rtype(ir), is_alu_imm(ir), is_lhi(ir), is_load(ir), is_link(ir)]
    )
    return E.band(writes, E.ne(gpr_dest(ir), E.const(5, 0)))


def gpr_dest(ir: E.Expr) -> E.Expr:
    """Destination register (``f^w_GPRwa``, precomputed in decode)."""
    dest = E.mux(is_rtype(ir), rd_r(ir), rd_i(ir))
    return E.mux(is_link(ir), E.const(5, 31), dest)


def b_operand_addr(ir: E.Expr) -> E.Expr:
    """Second GPR read address: ``rs2`` for R-type, the ``rd`` field for
    stores (the stored register lives in the rd position)."""
    return E.mux(is_store(ir), rd_i(ir), rs2(ir))


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------


def alu_result(ir: E.Expr, a: E.Expr, b: E.Expr, word: int = WORD) -> E.Expr:
    """The EX-stage result for R-type and ALU-immediate instructions.

    ``b`` is the already-selected second operand (register or extended
    immediate); shift amounts come from its low 5 bits.
    """
    zero = E.const(word, 0)
    one = E.const(word, 1)
    amount = E.zext(E.bits(b, 0, 4), word)

    rt = is_rtype(ir)
    f = funct(ir)
    op = opcode(ir)

    def rsel(code: int) -> E.Expr:
        return E.band(rt, E.eq(f, E.const(6, code)))

    def isel(code: int) -> E.Expr:
        return E.band(E.bnot(rt), E.eq(op, E.const(6, code)))

    sel_add = E.bor(rsel(isa.F_ADD), isel(isa.OP_ADDI))
    sel_sub = E.bor(rsel(isa.F_SUB), isel(isa.OP_SUBI))
    sel_and = E.bor(rsel(isa.F_AND), isel(isa.OP_ANDI))
    sel_or = E.bor(rsel(isa.F_OR), isel(isa.OP_ORI))
    sel_xor = E.bor(rsel(isa.F_XOR), isel(isa.OP_XORI))
    sel_sll = rsel(isa.F_SLL)
    sel_srl = rsel(isa.F_SRL)
    sel_sra = rsel(isa.F_SRA)
    sel_slt = E.bor(rsel(isa.F_SLT), isel(isa.OP_SLTI))
    sel_sltu = E.bor(rsel(isa.F_SLTU), isel(isa.OP_SLTUI))
    sel_seq = E.bor(rsel(isa.F_SEQ), isel(isa.OP_SEQI))
    sel_sne = E.bor(rsel(isa.F_SNE), isel(isa.OP_SNEI))
    sel_mult = rsel(isa.F_MULT)

    result = E.add(a, b)  # default: add
    for sel, value in (
        (sel_sub, E.sub(a, b)),
        (sel_and, E.band(a, b)),
        (sel_or, E.bor(a, b)),
        (sel_xor, E.bxor(a, b)),
        (sel_sll, E.shl(a, amount)),
        (sel_srl, E.lshr(a, amount)),
        (sel_sra, E.ashr(a, amount)),
        (sel_slt, E.mux(E.slt(a, b), one, zero)),
        (sel_sltu, E.mux(E.ult(a, b), one, zero)),
        (sel_seq, E.mux(E.eq(a, b), one, zero)),
        (sel_sne, E.mux(E.ne(a, b), one, zero)),
        (sel_mult, E.mul(a, b)),
    ):
        result = E.mux(sel, value, result)
    return result


def is_mult(ir: E.Expr) -> E.Expr:
    """R-type MULT — executed by the multi-cycle multiplier when the
    machine is configured with a latency > 1."""
    return E.band(
        E.eq(opcode(ir), E.const(6, isa.OP_SPECIAL)),
        E.eq(funct(ir), E.const(6, isa.F_MULT)),
    )


def ex_b_operand(ir: E.Expr, b_reg: E.Expr, word: int = WORD) -> E.Expr:
    """Second ALU operand: register for R-type, extended immediate for
    I-type (zero-extended for the logical immediates, sign-extended
    otherwise)."""
    use_zext = _op_is(ir, *sorted(isa.ZEXT_IMM_OPS))
    imm = E.mux(use_zext, imm16_zext(ir, word), imm16_sext(ir, word))
    return E.mux(is_alu_imm(ir), imm, b_reg)


# ---------------------------------------------------------------------------
# Loads and stores (byte-addressed over a word memory)
# ---------------------------------------------------------------------------


def shift4load(
    ir: E.Expr, mem_word: E.Expr, byte_offset: E.Expr, word: int = WORD
) -> E.Expr:
    """The paper's ``shift4load`` circuit (Figure 2): align and extend the
    memory word for LB/LBU/LH/LHU/LW.  ``byte_offset`` is the low 2 bits
    of the effective address; the memory is little-endian."""
    shift = E.zext(E.concat(byte_offset, E.const(3, 0)), word)  # offset * 8
    shifted = E.lshr(mem_word, shift)
    byte = E.bits(shifted, 0, 7)
    half = E.bits(shifted, 0, 15)
    op = opcode(ir)
    result = mem_word  # LW
    for code, value in (
        (isa.OP_LB, E.sext(byte, word)),
        (isa.OP_LBU, E.zext(byte, word)),
        (isa.OP_LH, E.sext(half, word)),
        (isa.OP_LHU, E.zext(half, word)),
    ):
        result = E.mux(E.eq(op, E.const(6, code)), value, result)
    return result


def store_merge(
    ir: E.Expr,
    old_word: E.Expr,
    data: E.Expr,
    byte_offset: E.Expr,
    word: int = WORD,
) -> E.Expr:
    """Merge the store data into the existing memory word for SB/SH/SW
    (read-modify-write byte lanes)."""
    shift = E.zext(E.concat(byte_offset, E.const(3, 0)), word)
    op = opcode(ir)
    mask_byte = E.shl(E.const(word, 0xFF), shift)
    mask_half = E.shl(E.const(word, 0xFFFF), shift)
    data_shifted = E.shl(data, shift)

    def merged(mask: E.Expr) -> E.Expr:
        return E.bor(E.band(old_word, E.bnot(mask)), E.band(data_shifted, mask))

    result = data  # SW: replace the whole word
    result = E.mux(E.eq(op, E.const(6, isa.OP_SB)), merged(mask_byte), result)
    result = E.mux(E.eq(op, E.const(6, isa.OP_SH)), merged(mask_half), result)
    return result


# ---------------------------------------------------------------------------
# Control flow (delayed branch)
# ---------------------------------------------------------------------------


def branch_taken(ir: E.Expr, a: E.Expr, word: int = WORD) -> E.Expr:
    """BEQZ/BNEZ decision on the (forwarded) first operand."""
    a_zero = E.eq(a, E.const(word, 0))
    return E.bor(
        E.band(_op_is(ir, isa.OP_BEQZ), a_zero),
        E.band(_op_is(ir, isa.OP_BNEZ), E.bnot(a_zero)),
    )


def branch_decision(ir: E.Expr, a: E.Expr, word: int = WORD) -> E.Expr:
    """The PC-redirect decision: a branch opcode whose condition holds.

    Exposed separately so machines can declassify it as a scheduling
    oracle (``PreparedMachine.declassify``): the stall/forwarding
    obligations hold for either outcome, so the one-bit decision is
    width-generic even though ``a`` is a full datapath word.
    """
    return E.band(is_branch(ir), branch_taken(ir, a, word))


def next_pcp(
    ir: E.Expr, dpc: E.Expr, pcp: E.Expr, a: E.Expr, word: int = WORD
) -> E.Expr:
    """``f^1_PCP``: the fetch address after the delay slot.

    * default: ``PCP + 4``;
    * taken branch: ``DPC + 4 + sext(imm16)``;
    * J/JAL: ``DPC + 4 + sext(imm26)``;
    * JR/JALR: the (forwarded) register operand.
    """
    four = E.const(word, 4)
    sequential = E.add(pcp, four)
    branch_target = E.add(E.add(dpc, four), imm16_sext(ir, word))
    jump_target = E.add(E.add(dpc, four), imm26_sext(ir, word))
    result = sequential
    result = E.mux(branch_decision(ir, a, word), branch_target, result)
    result = E.mux(is_jump_imm(ir), jump_target, result)
    result = E.mux(is_jump_reg(ir), a, result)
    return result


def link_value(dpc: E.Expr, word: int = WORD) -> E.Expr:
    """JAL/JALR link value: the address after the delay slot."""
    return E.add(dpc, E.const(word, 8))
