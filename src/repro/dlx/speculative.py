"""A speculative DLX variant: no delay slot, predicted instruction fetch.

This machine realises the paper's Section 5 remark: "if one speculates on
whether a branch is taken or not taken in stage 0 (instruction fetch), one
can implement branch prediction."

ISA difference to :mod:`repro.dlx.prepared`: control transfers take effect
immediately (no delay slot) and the link value is ``PC + 4``.  Because the
next fetch address of instruction ``i`` is only certain once ``i`` resolves
in EX, the fetch stage *guesses* it:

* every instruction's **guess** is its own fetch address (the value of
  ``PC`` when it occupied stage 0), piped along by the tool;
* every instruction writes its **true next PC** into the architectural
  register ``TNPC`` in EX (stage 2);
* when an instruction reaches EX, its piped guess is compared against its
  predecessor's ``TNPC`` (readable directly in stage 2) — a mismatch means
  the instruction was fetched from the wrong address: ``rollback_2``
  squashes it and everything younger, and the repair ``PC := TNPC``
  restarts fetch on the correct path.

The *predictor* only chooses the guessed fetch address; per the paper it
affects performance, never correctness (an adversarial predictor still
yields a consistent machine — experiment E5 checks exactly that).

Predictors (all decode the fetched word combinationally):

* ``"not_taken"``  — always ``PC + 4``;
* ``"taken"``      — branches and immediate jumps predicted taken
  (target computable at fetch); register jumps fall back to ``PC + 4``;
* ``"btfn"``       — backward-taken / forward-not-taken for conditional
  branches; immediate jumps predicted taken.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import expr as E
from ..machine.prepared import PreparedMachine, SpeculationSpec
from . import datapath as dp
from . import isa

WORD = isa.WORD

PREDICTORS = ("not_taken", "taken", "btfn")


@dataclass(frozen=True)
class DlxSpecConfig:
    """Sizing and predictor selection for the speculative DLX."""

    imem_addr_width: int = 10
    dmem_addr_width: int = 10
    predictor: str = "not_taken"
    # Datapath width; the 32-bit instruction encoding (IR, IMem, decode)
    # is fixed, exactly as for :class:`repro.dlx.prepared.DlxConfig`.
    word: int = WORD

    def __post_init__(self) -> None:
        if self.predictor not in PREDICTORS:
            raise ValueError(
                f"unknown predictor {self.predictor!r}; use one of {PREDICTORS}"
            )
        if self.word < 32:
            raise ValueError("DLX datapath width must be at least 32 bits")


def _predicted_npc(
    predictor: str, pc: E.Expr, insn: E.Expr, word: int = WORD
) -> E.Expr:
    """The fetch stage's guess for the next PC."""
    fall_through = E.add(pc, E.const(word, 4))
    if predictor == "not_taken":
        return fall_through
    branch_target = E.add(fall_through, dp.imm16_sext(insn, word))
    jump_target = E.add(fall_through, dp.imm26_sext(insn, word))
    backward = E.bit(insn, 15)  # sign of imm16
    if predictor == "taken":
        take_branch = dp.is_branch(insn)
    else:  # btfn
        take_branch = E.band(dp.is_branch(insn), backward)
    guess = fall_through
    guess = E.mux(take_branch, branch_target, guess)
    guess = E.mux(dp.is_jump_imm(insn), jump_target, guess)
    return guess


def _true_npc(ir: E.Expr, pc: E.Expr, a: E.Expr, word: int = WORD) -> E.Expr:
    """``f^2_TNPC``: the architecturally correct next PC, resolved in EX."""
    fall_through = E.add(pc, E.const(word, 4))
    branch_target = E.add(fall_through, dp.imm16_sext(ir, word))
    jump_target = E.add(fall_through, dp.imm26_sext(ir, word))
    result = fall_through
    result = E.mux(dp.branch_decision(ir, a, word), branch_target, result)
    result = E.mux(dp.is_jump_imm(ir), jump_target, result)
    result = E.mux(dp.is_jump_reg(ir), a, result)
    return result


def build_dlx_spec_machine(
    program: list[int],
    data: dict[int, int] | None = None,
    config: DlxSpecConfig | None = None,
) -> PreparedMachine:
    """Build the prepared speculative DLX for a program."""
    config = config or DlxSpecConfig()
    word = config.word
    imem_size = 1 << config.imem_addr_width
    if len(program) > imem_size:
        raise ValueError("program exceeds instruction memory")

    machine = PreparedMachine("dlx-spec", 5)

    # ---- state -----------------------------------------------------------
    machine.add_register("PC", word, first=1, init=0, visible=True)
    machine.add_register("IR", WORD, first=1, last=4, init=isa.NOP)
    machine.add_register("PCI", word, first=1, last=3)  # own fetch address
    machine.add_register("A", word, first=2)
    machine.add_register("B", word, first=2)
    machine.add_register("C", word, first=2, last=4)
    machine.add_register("MAR", word, first=3, last=4)
    machine.add_register("MDRw", word, first=3)
    machine.add_register("MDRr", word, first=4)
    machine.add_register("TNPC", word, first=3, init=0)

    machine.add_register_file("GPR", addr_width=5, data_width=word, write_stage=4)
    machine.add_register_file(
        "IMem",
        addr_width=config.imem_addr_width,
        data_width=WORD,
        write_stage=0,
        init={
            i: (program[i] if i < len(program) else isa.NOP)
            for i in range(imem_size)
        },
        read_only=True,
    )
    machine.add_register_file(
        "DMem",
        addr_width=config.dmem_addr_width,
        data_width=word,
        write_stage=3,
        init=dict(data or {}),
    )

    # ---- stage 0: IF (speculative) -------------------------------------------
    pc = machine.read_last("PC")
    fetch_index = E.bits(pc, 2, 2 + config.imem_addr_width - 1)
    fetched = machine.read_file("IMem", fetch_index)
    machine.set_output(0, "IR", fetched)
    machine.set_output(0, "PCI", pc)
    machine.set_output(
        0, "PC", _predicted_npc(config.predictor, pc, fetched, word)
    )

    # ---- stage 1: ID --------------------------------------------------------------
    ir1 = machine.read("IR", 1)
    pci1 = machine.read("PCI", 1)
    a_read = machine.read_file("GPR", dp.rs1(ir1))
    b_read = machine.read_file("GPR", dp.b_operand_addr(ir1))
    machine.set_output(1, "A", a_read)
    machine.set_output(1, "B", b_read)

    lhi_value = E.zext(E.concat(E.bits(ir1, 0, 15), E.const(16, 0)), word)
    link_value = E.add(pci1, E.const(word, 4))
    machine.set_output(
        1,
        "C",
        E.mux(dp.is_lhi(ir1), lhi_value, link_value),
        we=E.bor(dp.is_lhi(ir1), dp.is_link(ir1)),
    )

    # ---- stage 2: EX ------------------------------------------------------------------
    ir2 = machine.read("IR", 2)
    pci2 = machine.read("PCI", 2)
    a2 = machine.read("A", 2)
    b2 = machine.read("B", 2)
    machine.set_output(
        2,
        "C",
        dp.alu_result(ir2, a2, dp.ex_b_operand(ir2, b2, word), word),
        we=dp.is_alu(ir2),
    )
    machine.set_output(2, "MAR", E.add(a2, dp.imm16_sext(ir2, word)))
    machine.set_output(2, "MDRw", b2)
    machine.set_output(2, "TNPC", _true_npc(ir2, pci2, a2, word))
    # Branch resolution is the sanctioned redirect channel (see the plain
    # DLX): both outcomes are covered by the scheduling obligations.
    machine.declassify(2, dp.branch_decision(ir2, a2, word))

    # ---- stage 3: MEM --------------------------------------------------------------------
    ir3 = machine.read("IR", 3)
    mar3 = machine.read("MAR", 3)
    mdrw3 = machine.read("MDRw", 3)
    word_index = E.bits(mar3, 2, 2 + config.dmem_addr_width - 1)
    byte_offset = E.bits(mar3, 0, 1)
    mem_word = machine.read_file("DMem", word_index)
    machine.set_output(3, "MDRr", mem_word)
    machine.set_regfile_write(
        "DMem",
        data=dp.store_merge(ir3, mem_word, mdrw3, byte_offset, word),
        we=dp.is_store(ir3),
        wa=word_index,
        compute_stage=3,
    )

    # ---- stage 4: WB -----------------------------------------------------------------------
    ir4 = machine.read("IR", 4)
    c4 = machine.read("C", 4)
    mdrr4 = machine.read("MDRr", 4)
    mar4 = machine.read("MAR", 4)
    loaded = dp.shift4load(ir4, mdrr4, E.bits(mar4, 0, 1), word)
    machine.set_regfile_write(
        "GPR",
        data=E.mux(dp.is_load(ir4), loaded, c4),
        we=dp.writes_gpr(ir1),
        wa=dp.gpr_dest(ir1),
        compute_stage=1,
    )

    # ---- forwarding registers -----------------------------------------------------------------
    machine.add_forwarding_register("GPR", "C", 2)
    machine.add_forwarding_register("GPR", "C", 3)

    # ---- fetch speculation -----------------------------------------------------------------------
    machine.add_speculation(
        SpeculationSpec(
            name="fetch",
            guess_stage=0,
            guess=machine.read_last("PC"),
            resolve_stage=2,
            actual=machine.read("TNPC", 3),
            repairs={"PC.1": machine.read("TNPC", 3)},
        )
    )

    # ---- invariant templates -------------------------------------------------
    # Same encoding discipline as the in-order DLX: control-transfer words
    # carry word-aligned immediates; IR.1 gets the fact from the ROM and
    # each IR.k inherits it from IR.{k-1}, so only the whole chain is
    # inductive (mined and proved by repro.absint).
    machine.add_invariant_template(
        "ctl-imm-aligned",
        "IR",
        lambda ir: E.implies(
            E.bor(dp.is_branch(ir), dp.is_jump_imm(ir)),
            E.eq(E.bits(ir, 0, 1), E.const(2, 0)),
        ),
        notes="branch/jump-immediate words have 4-byte-aligned low immediate"
        " bits; true of every assembled DLX program, inherited down the IR"
        " pipeline",
    )

    machine.validate()
    return machine
