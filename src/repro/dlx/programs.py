"""DLX workload programs for the evaluation harness.

Each workload returns assembly source (and optional initial data memory).
The ``delay_slots`` flag targets the classic delay-slot DLX (a NOP is
placed after every control transfer) or the speculative no-delay-slot
variant.  All workloads end in a ``halt: j halt`` idle loop; run them with
:func:`repro.perf.metrics.run_to_completion`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .assemble import assemble, labels_of


@dataclass
class Workload:
    """An assembled workload with its completion metadata."""

    name: str
    source: str
    program: list[int]
    data: dict[int, int]
    halt_address: int

    @classmethod
    def from_source(
        cls, name: str, source: str, data: dict[int, int] | None = None
    ) -> "Workload":
        labels = labels_of(source)
        if "halt" not in labels:
            raise ValueError(f"workload {name!r} has no 'halt' label")
        return cls(
            name=name,
            source=source,
            program=assemble(source),
            data=dict(data or {}),
            halt_address=labels["halt"],
        )


def _ds(delay_slots: bool) -> str:
    """Delay-slot filler after a control transfer."""
    return "        nop\n" if delay_slots else ""


def alu_dependent(n: int = 24, delay_slots: bool = True) -> Workload:
    """A chain of immediately dependent ALU instructions — the forwarding
    stress case (every instruction needs its predecessor's result)."""
    lines = ["        addi r1, r0, 1"]
    for i in range(n):
        src = 1 + (i % 2)
        dst = 1 + ((i + 1) % 2)
        lines.append(f"        addi r{dst}, r{src}, {i + 1}")
    lines.append("halt:   j halt")
    lines.append("        nop")
    return Workload.from_source("alu-dependent", "\n".join(lines) + "\n")


def alu_independent(n: int = 24, delay_slots: bool = True) -> Workload:
    """Independent ALU instructions — the no-hazard best case (CPI -> 1)."""
    lines = []
    for i in range(n):
        lines.append(f"        addi r{1 + (i % 8)}, r0, {i}")
    lines.append("halt:   j halt")
    lines.append("        nop")
    return Workload.from_source("alu-independent", "\n".join(lines) + "\n")


def load_use(n: int = 12, delay_slots: bool = True) -> Workload:
    """Alternating load / immediate-use pairs — the interlock stress case
    (every use hits the load-delay hazard)."""
    lines = []
    data = {}
    for i in range(n):
        data[i] = (7 * i + 3) & 0xFFFFFFFF
        lines.append(f"        lw   r1, {4 * i}(r0)")
        lines.append(f"        add  r{2 + (i % 4)}, r1, r1")
    lines.append("halt:   j halt")
    lines.append("        nop")
    return Workload.from_source("load-use", "\n".join(lines) + "\n", data)


def hazard_torture(iterations: int = 2, delay_slots: bool = True) -> Workload:
    """A compact kernel touching every hazard mechanism at once: RAW
    dependencies at distances 1..3 on *both* operand positions, load-use
    interlocks feeding both operands, store/load round-trips at distinct
    data addresses, sub-word (byte) loads and stores at non-zero byte
    offsets, a taken loop branch and a ``jal``/``jr`` pair.  Built for
    the fault-injection campaign (:mod:`repro.faults`), which needs a
    single short workload whose trace distinguishes every catalogued
    mutant; fits a 16-word data memory (stores at words 1..4).
    """
    ds = _ds(delay_slots)
    source = f"""
        addi r9, r0, {iterations}
        addi r1, r0, 5
        addi r2, r0, 9
loop:   add  r3, r1, r2       ; B-dep distance 1 (r2), A-dep distance 2
        add  r4, r3, r1       ; A-dep distance 1
        add  r5, r1, r3       ; B-dep distance 2
        add  r6, r2, r3       ; B-dep distance 3
        sub  r7, r6, r4       ; A distance 1, B distance 3
        sw   4(r0), r3
        sw   8(r0), r7
        lw   r8, 4(r0)
        add  r10, r8, r8      ; load-use on both operands
        lw   r11, 8(r0)
        add  r12, r1, r11     ; load-use on the B operand only
        sw   12(r0), r12
        lw   r13, 12(r0)
        sub  r14, r13, r10    ; load-use chained into a distance-1 use
        lb   r16, 13(r0)      ; sub-word load, byte offset 1
        lbu  r17, 14(r0)      ; unsigned sub-word load, byte offset 2
        add  r16, r16, r17
        sb   17(r0), r16      ; sub-word store into word 4
        lb   r18, 17(r0)
        add  r14, r14, r18    ; fold the sub-word results into the output
        jal  leaf
{ds}        add  r2, r15, r14     ; consume the subroutine result
        subi r9, r9, 1
        bnez r9, loop
{ds}halt:   j halt
        nop
leaf:   addi r15, r14, 3      ; depends on the caller's latest value
        jr   r31
{ds}"""
    return Workload.from_source("hazard-torture", source)


def memcpy(words: int = 8, delay_slots: bool = True) -> Workload:
    """Copy ``words`` words from address 0 to address 256 in a loop."""
    data = {i: (0x1000 + i) for i in range(words)}
    ds = _ds(delay_slots)
    source = f"""
        addi r1, r0, 0        ; src
        addi r2, r0, 256      ; dst
        addi r3, r0, {words}  ; count
loop:   lw   r4, 0(r1)
        sw   0(r2), r4
        addi r1, r1, 4
        addi r2, r2, 4
        subi r3, r3, 1
        bnez r3, loop
{ds}halt:   j halt
        nop
"""
    return Workload.from_source("memcpy", source, data)


def dot_product(n: int = 8, delay_slots: bool = True) -> Workload:
    """Dot product of two small vectors; result stored at word 128."""
    data = {}
    for i in range(n):
        data[i] = i + 1
        data[32 + i] = 2 * i + 1
    ds = _ds(delay_slots)
    source = f"""
        addi r1, r0, 0        ; a
        addi r2, r0, 128      ; b (byte address of word 32)
        addi r3, r0, {n}      ; count
        addi r4, r0, 0        ; acc
loop:   lw   r5, 0(r1)
        lw   r6, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        subi r3, r3, 1
        add  r7, r5, r6       ; use both loads
        add  r4, r4, r7
        bnez r3, loop
{ds}        sw   512(r0), r4
halt:   j halt
        nop
"""
    return Workload.from_source("dot-product", source, data)


def branchy(iterations: int = 10, delay_slots: bool = True) -> Workload:
    """A counted loop with a data-dependent inner branch — the control
    stress case for the speculative machine."""
    ds = _ds(delay_slots)
    source = f"""
        addi r1, r0, {iterations}
        addi r2, r0, 0
        addi r3, r0, 0
loop:   andi r4, r1, 1
        beqz r4, even
{ds}        addi r2, r2, 1     ; odd iteration
        j    next
{ds}even:   addi r3, r3, 1     ; even iteration
next:   subi r1, r1, 1
        bnez r1, loop
{ds}halt:   j halt
        nop
"""
    return Workload.from_source("branchy", source)


def fibonacci(n: int = 10, delay_slots: bool = True) -> Workload:
    """Iterative Fibonacci; F(n) left in r3 and stored at word 0."""
    ds = _ds(delay_slots)
    source = f"""
        addi r1, r0, 0        ; F(i)
        addi r2, r0, 1        ; F(i+1)
        addi r4, r0, {n}
loop:   add  r3, r1, r2
        move r1, r2
        move r2, r3
        subi r4, r4, 1
        bnez r4, loop
{ds}        sw   0(r0), r3
halt:   j halt
        nop
"""
    return Workload.from_source("fibonacci", source)


def bubble_sort(n: int = 6, seed: int = 3, delay_slots: bool = True) -> Workload:
    """Bubble-sort ``n`` words in place at address 0 — nested loops,
    data-dependent branches, heavy load/store traffic."""
    rng = random.Random(seed)
    data = {i: rng.randrange(1, 200) for i in range(n)}
    ds = _ds(delay_slots)
    source = f"""
        addi r1, r0, {n - 1}   ; outer count
outer:  addi r2, r0, 0         ; byte index
        addi r3, r0, 0         ; swapped flag
inner:  lw   r4, 0(r2)
        lw   r5, 4(r2)
        slt  r6, r5, r4        ; out of order?
        beqz r6, noswap
{ds}        sw   0(r2), r5
        sw   4(r2), r4
        addi r3, r0, 1
noswap: addi r2, r2, 4
        slti r7, r2, {4 * (n - 1)}
        bnez r7, inner
{ds}        subi r1, r1, 1
        bnez r1, outer
{ds}halt:   j halt
        nop
"""
    return Workload.from_source("bubble-sort", source, data)


def matmul(n: int = 3, seed: int = 9, delay_slots: bool = True) -> Workload:
    """Multiply two ``n x n`` matrices (A at word 0, B at word 16, C at
    word 32) with the MULT instruction — a multiplication-dense kernel
    for the multi-cycle-unit experiments."""
    rng = random.Random(seed)
    data = {}
    for i in range(n * n):
        data[i] = rng.randrange(1, 9)  # A
        data[16 + i] = rng.randrange(1, 9)  # B
    ds = _ds(delay_slots)
    source = f"""
        addi r21, r0, {n}       ; matrix dimension
        addi r22, r0, 2         ; shift for word size
        addi r1, r0, 0          ; i
iloop:  addi r2, r0, 0          ; j
jloop:  addi r3, r0, 0          ; k
        addi r4, r0, 0          ; acc
kloop:  mult r5, r1, r21        ; i*n
        add  r5, r5, r3         ; i*n + k
        sll  r5, r5, r22        ; *4
        lw   r6, 0(r5)          ; A[i][k]
        mult r7, r3, r21
        add  r7, r7, r2
        sll  r7, r7, r22
        lw   r8, 64(r7)         ; B[k][j] (B at byte 64 = word 16)
        mult r9, r6, r8
        add  r4, r4, r9
        addi r3, r3, 1
        slt  r10, r3, r21
        bnez r10, kloop
{ds}        mult r5, r1, r21
        add  r5, r5, r2
        sll  r5, r5, r22
        sw   128(r5), r4        ; C at byte 128 = word 32
        addi r2, r2, 1
        slt  r10, r2, r21
        bnez r10, jloop
{ds}        addi r1, r1, 1
        slt  r10, r1, r21
        bnez r10, iloop
{ds}halt:   j halt
        nop
"""
    return Workload.from_source("matmul", source, data)


def random_program(
    n: int = 40, seed: int = 0, delay_slots: bool = True
) -> Workload:
    """A seeded random straight-line mix of ALU, load/store and short
    forward branches (always reconvergent, so both sequencing models
    terminate at the halt loop)."""
    rng = random.Random(seed)
    lines: list[str] = []
    data = {i: rng.randrange(1 << 16) for i in range(32)}
    label = 0
    i = 0
    while i < n:
        kind = rng.random()
        dst = rng.randrange(1, 8)
        src1 = rng.randrange(0, 8)
        src2 = rng.randrange(0, 8)
        if kind < 0.45:
            op = rng.choice(["add", "sub", "and", "or", "xor", "slt"])
            lines.append(f"        {op}  r{dst}, r{src1}, r{src2}")
        elif kind < 0.6:
            op = rng.choice(["addi", "andi", "ori", "xori"])
            lines.append(f"        {op} r{dst}, r{src1}, {rng.randrange(256)}")
        elif kind < 0.75:
            offset = 4 * rng.randrange(32)
            lines.append(f"        lw   r{dst}, {offset}(r0)")
        elif kind < 0.85:
            offset = 4 * rng.randrange(32)
            lines.append(f"        sw   {offset}(r0), r{src1}")
        else:
            lines.append(f"        beqz r{src1}, fwd{label}")
            if delay_slots:
                lines.append("        nop")
            skip = rng.randrange(1, 4)
            for _ in range(skip):
                d = rng.randrange(1, 8)
                lines.append(f"        addi r{d}, r{d}, 1")
                i += 1
            lines.append(f"fwd{label}:")
            label += 1
        i += 1
    lines.append("halt:   j halt")
    lines.append("        nop")
    return Workload.from_source(
        f"random-{seed}", "\n".join(lines) + "\n", data
    )


def standard_suite(delay_slots: bool = True) -> list[Workload]:
    """The workload suite used by the consistency and CPI experiments."""
    return [
        alu_independent(delay_slots=delay_slots),
        alu_dependent(delay_slots=delay_slots),
        load_use(delay_slots=delay_slots),
        memcpy(delay_slots=delay_slots),
        dot_product(delay_slots=delay_slots),
        branchy(delay_slots=delay_slots),
        fibonacci(delay_slots=delay_slots),
        random_program(seed=1, delay_slots=delay_slots),
        random_program(seed=2, delay_slots=delay_slots),
    ]


def extended_suite(delay_slots: bool = True) -> list[Workload]:
    """Longer application kernels (hundreds of dynamic instructions):
    bubble sort and MULT-based matrix multiplication."""
    return [
        bubble_sort(delay_slots=delay_slots),
        matmul(delay_slots=delay_slots),
    ]
