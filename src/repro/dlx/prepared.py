"""The prepared sequential DLX (the paper's case study, Section 4.2).

A five-stage DLX without floating point unit, with one branch delay slot
(so instruction fetch needs no speculation), partitioned as::

    0 IF   IR.1 := IMem[DPC]
    1 ID   operand fetch A.2/B.2 (forwarded after transformation),
           branch resolution, DPC.2 := PCP, PCP.2 := next,
           C.2 := link/LHI value, GPRwe/GPRwa precomputed
    2 EX   C.3 := ALU result, MAR.3 := A + imm, MDRw.3 := B
    3 MEM  MDRr.4 := DMem[MAR], DMem write (read-modify-write lanes)
    4 WB   GPR[GPRwa] := is_load ? shift4load(MDRr) : C.4

The forwarding registers named for GPR are ``C`` in the execute and
memory stages (instances ``C.2``/``C.3``/``C.4`` — the paper's Figure 2).

The architectural PC is the delayed pair ``(DPC, PCP)``: ``DPC`` is the
fetch address of the current instruction, ``PCP`` the fetch address of
the next one, so a branch in instruction ``i`` redirects instruction
``i+2``.  ``DPC`` is read by the fetch stage but written by decode; after
transformation that read becomes a (register) forwarding path from ID to
IF — which is exactly how the tool "automatically generates a pipelined
machine with one or more delay slots".

With ``interrupts=True`` the machine additionally implements precise
interrupts by speculating that no interrupt occurs (paper, Section 5,
after Smith & Pleszkun [23]): TRAP and the external ``irq`` line are
resolved in the MEM stage — before any architectural write of the
offending instruction — and a mismatch squashes the pipe, saves the
``(EDPC, EPCP)`` pair and redirects fetch to the handler at ``SISR``.
``RFE`` restores the saved pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl import expr as E
from ..machine.prepared import PreparedMachine, SpeculationSpec
from . import datapath as dp
from . import isa

WORD = isa.WORD
SISR_DEFAULT = 0x400  # interrupt service routine entry (byte address)


@dataclass(frozen=True)
class DlxConfig:
    """Sizing and feature knobs of the DLX machine."""

    imem_addr_width: int = 10  # instruction words
    dmem_addr_width: int = 10  # data words
    interrupts: bool = False
    sisr: int = SISR_DEFAULT
    ext_stall_mem: bool = False  # model a slow-memory stall input at MEM
    # MULT occupies EX for this many cycles (an iterative multiplier);
    # 1 = combinational.  The result is only forwardable/written once the
    # latency has elapsed, so consumers interlock meanwhile.
    multiplier_latency: int = 1
    # Datapath width (GPR, data memory, PC pair and the datapath pipeline
    # registers).  The 32-bit instruction encoding — IR, IMem and every
    # decode function — is fixed, so the ``word``-indexed family shares
    # its control cone verbatim: the property the width-parametricity
    # analysis (:mod:`repro.analysis`) certifies.  Must be >= 32 (LHI
    # fills bits 16..31, imm26 must embed).
    word: int = WORD

    def __post_init__(self) -> None:
        if self.multiplier_latency < 1:
            raise ValueError("multiplier latency must be at least 1 cycle")
        if self.word < 32:
            raise ValueError("DLX datapath width must be at least 32 bits")


def build_dlx_machine(
    program: list[int],
    data: dict[int, int] | None = None,
    config: DlxConfig | None = None,
) -> PreparedMachine:
    """Build the prepared sequential DLX for a program.

    ``program`` is a list of instruction words placed from byte address 0;
    unoccupied instruction memory reads as NOP.  ``data`` maps *word*
    indices to initial data-memory words.
    """
    config = config or DlxConfig()
    word = config.word
    imem_size = 1 << config.imem_addr_width
    if len(program) > imem_size:
        raise ValueError(
            f"program of {len(program)} words exceeds instruction memory"
            f" ({imem_size} words)"
        )

    machine = PreparedMachine("dlx", 5)

    # ---- state ------------------------------------------------------------
    machine.add_register("DPC", word, first=2, init=0, visible=True)
    machine.add_register("PCP", word, first=2, init=4, visible=True)
    machine.add_register("IR", WORD, first=1, last=4, init=isa.NOP)
    machine.add_register("IPC", word, first=2, last=4)
    machine.add_register("A", word, first=2)
    machine.add_register("B", word, first=2)
    machine.add_register("C", word, first=2, last=4)
    machine.add_register("MAR", word, first=3, last=4)
    machine.add_register("MDRw", word, first=3)
    machine.add_register("MDRr", word, first=4)

    machine.add_register_file(
        "GPR", addr_width=5, data_width=word, write_stage=4
    )
    machine.add_register_file(
        "IMem",
        addr_width=config.imem_addr_width,
        data_width=WORD,
        write_stage=0,
        init={
            i: (program[i] if i < len(program) else isa.NOP)
            for i in range(imem_size)
        },
        read_only=True,
    )
    machine.add_register_file(
        "DMem",
        addr_width=config.dmem_addr_width,
        data_width=word,
        write_stage=3,
        init=dict(data or {}),
    )
    if config.interrupts:
        machine.add_register("NPC", word, first=2, last=3)
        machine.add_register("EDPC", word, first=4, visible=True)
        machine.add_register("EPCP", word, first=4, visible=True)
    if config.ext_stall_mem:
        machine.allow_external_stall(3)

    # ---- stage 0: IF ---------------------------------------------------------
    dpc = machine.read_last("DPC")  # forwarded from ID after transformation
    fetch_index = E.bits(dpc, 2, 2 + config.imem_addr_width - 1)
    machine.set_output(0, "IR", machine.read_file("IMem", fetch_index))

    # ---- stage 1: ID -----------------------------------------------------------
    ir1 = machine.read("IR", 1)
    dpc1 = machine.read_last("DPC")  # own-stage read: value before update
    pcp1 = machine.read_last("PCP")
    a_read = machine.read_file("GPR", dp.rs1(ir1))
    b_read = machine.read_file("GPR", dp.b_operand_addr(ir1))

    machine.set_output(1, "A", a_read)
    machine.set_output(1, "B", b_read)
    machine.set_output(1, "IPC", dpc1)

    new_dpc: E.Expr = pcp1
    new_pcp = dp.next_pcp(ir1, dpc1, pcp1, a_read, word)
    if config.interrupts:
        machine.set_output(1, "NPC", pcp1)
        rfe = dp.is_rfe(ir1)
        new_dpc = E.mux(rfe, machine.read_last("EDPC"), new_dpc)
        new_pcp = E.mux(rfe, machine.read_last("EPCP"), new_pcp)
    machine.set_output(1, "DPC", new_dpc)
    machine.set_output(1, "PCP", new_pcp)
    # The branch decision is a sanctioned redirect channel: the scheduling
    # obligations quantify over both outcomes (HADES small-model argument).
    machine.declassify(1, dp.branch_decision(ir1, a_read, word))

    lhi_value = E.zext(E.concat(E.bits(ir1, 0, 15), E.const(16, 0)), word)
    machine.set_output(
        1,
        "C",
        E.mux(dp.is_lhi(ir1), lhi_value, dp.link_value(dpc1, word)),
        we=E.bor(dp.is_lhi(ir1), dp.is_link(ir1)),
    )

    # ---- stage 2: EX ---------------------------------------------------------------
    ir2 = machine.read("IR", 2)
    a2 = machine.read("A", 2)
    b2 = machine.read("B", 2)
    c_we = dp.is_alu(ir2)
    if config.multiplier_latency > 1:
        # An iterative multiplier: MULT holds EX for `latency` cycles; the
        # result exists (and may be forwarded) only in the final cycle.
        latency = config.multiplier_latency
        count = machine.add_latency_counter("mulcnt", stage=2, width=6)
        busy = E.band(
            dp.is_mult(ir2), E.ult(count, E.const(6, latency - 1))
        )
        machine.add_stall_condition(2, busy)
        c_we = E.band(c_we, E.bnot(busy))
    machine.set_output(
        2,
        "C",
        dp.alu_result(ir2, a2, dp.ex_b_operand(ir2, b2, word), word),
        we=c_we,
    )
    machine.set_output(2, "MAR", E.add(a2, dp.imm16_sext(ir2, word)))
    machine.set_output(2, "MDRw", b2)

    # ---- stage 3: MEM -----------------------------------------------------------------
    ir3 = machine.read("IR", 3)
    mar3 = machine.read("MAR", 3)
    mdrw3 = machine.read("MDRw", 3)
    word_index = E.bits(mar3, 2, 2 + config.dmem_addr_width - 1)
    byte_offset = E.bits(mar3, 0, 1)
    mem_word = machine.read_file("DMem", word_index)
    machine.set_output(3, "MDRr", mem_word)
    machine.set_regfile_write(
        "DMem",
        data=dp.store_merge(ir3, mem_word, mdrw3, byte_offset, word),
        we=dp.is_store(ir3),
        wa=word_index,
        compute_stage=3,
    )
    if config.interrupts:
        machine.set_output(3, "EDPC", machine.read("IPC", 3), we=E.const(1, 0))
        machine.set_output(3, "EPCP", machine.read("NPC", 3), we=E.const(1, 0))

    # ---- stage 4: WB --------------------------------------------------------------------
    ir4 = machine.read("IR", 4)
    c4 = machine.read("C", 4)
    mdrr4 = machine.read("MDRr", 4)
    mar4 = machine.read("MAR", 4)
    loaded = dp.shift4load(ir4, mdrr4, E.bits(mar4, 0, 1), word)
    machine.set_regfile_write(
        "GPR",
        data=E.mux(dp.is_load(ir4), loaded, c4),
        we=dp.writes_gpr(ir1),
        wa=dp.gpr_dest(ir1),
        compute_stage=1,
    )

    # ---- forwarding registers (the designer's only manual input) -----------------------
    machine.add_forwarding_register("GPR", "C", 2)
    machine.add_forwarding_register("GPR", "C", 3)

    # ---- precise interrupts by speculation ----------------------------------------------
    if config.interrupts:
        irq = E.input_port("irq", 1)
        jisr = E.bor(dp.is_trap(ir3), irq)
        machine.add_speculation(
            SpeculationSpec(
                name="interrupt",
                guess_stage=0,
                guess=E.const(1, 0),
                resolve_stage=3,
                actual=jisr,
                repairs={
                    "DPC.2": E.const(word, config.sisr),
                    "PCP.2": E.const(word, config.sisr + 4),
                    "EDPC.4": machine.read("IPC", 3),
                    "EPCP.4": machine.read("NPC", 3),
                },
            )
        )

    # ---- invariant templates -------------------------------------------------
    # Control-transfer instructions carry word-aligned immediates: the fact
    # holds of every word in the instruction ROM, so it holds of IR.1 after
    # any fetch, and each later IR.k only ever loads IR.{k-1} — a chain that
    # is provable only by *simultaneous* induction (repro.absint mines and
    # proves it, then uses it to strengthen the tmpl.* obligations).
    machine.add_invariant_template(
        "ctl-imm-aligned",
        "IR",
        lambda ir: E.implies(
            E.bor(dp.is_branch(ir), dp.is_jump_imm(ir)),
            E.eq(E.bits(ir, 0, 1), E.const(2, 0)),
        ),
        notes="branch/jump-immediate words have 4-byte-aligned low immediate"
        " bits; true of every assembled DLX program, inherited down the IR"
        " pipeline",
    )

    machine.validate()
    return machine
