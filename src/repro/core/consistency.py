"""Data consistency and liveness checking (paper, Sections 6.2 and 6.3).

Two complementary checks, both against the machine's own *sequential*
elaboration (the paper's correctness reference):

1. **Scheduling-function data consistency** — the paper's criterion
   ``R_I^T = R_S^i``: during every cycle ``T``, each visible register (and
   register-file word) written by stage ``k`` holds the specification value
   right before instruction ``i = I(k, T)`` executes.  Applicable to
   machines without speculation (the paper's proofs also omit rollback).

2. **Commit-stream equivalence** — the sequences of architectural writes
   (the ``commit.*`` probes shared by both elaborations) must be identical
   prefix-wise.  Squashed speculative instructions never commit, so this
   check also covers machines with rollback.

Liveness (Section 6.3): a finite upper bound on the number of cycles any
fetched instruction needs to retire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..hdl.netlist import Module
from ..hdl.sim import Simulator, Trace
from ..machine.prepared import PreparedMachine
from ..machine.sequential import build_sequential
from .scheduling import compute_schedule

InputProvider = Callable[[int], Mapping[str, int]]


@dataclass
class ConsistencyReport:
    """Outcome of a consistency check."""

    ok: bool
    cycles: int
    instructions_retired: int
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def first_violation(self) -> str | None:
        return self.violations[0] if self.violations else None


@dataclass
class SpecState:
    """Visible architectural state of the specification before one
    instruction: register values by name, register-file contents by name."""

    registers: dict[str, int]
    memories: dict[str, dict[int, int]]


class SpecStateCache:
    """Lazily extended sequential-reference snapshots.

    The sequential machine is mutant-independent (mutation operators
    rewrite the *pipelined* elaboration only), so one cache serves every
    consistency check of a campaign: the reference simulation is kept
    alive and extended on demand instead of being re-run per mutant.
    ``prefix(i)`` returns the same snapshots :func:`collect_spec_states`
    would, by construction — it is the same simulation, just persistent.
    """

    def __init__(
        self, machine: PreparedMachine, inputs: InputProvider | None = None
    ) -> None:
        self._machine = machine
        self._inputs = inputs
        self._sim: Simulator | None = None
        self._states: list[SpecState] = []
        self._cycles = 0

    def _snapshot(self) -> SpecState:
        sim = self._sim
        assert sim is not None
        registers = {
            reg.name: sim.reg(reg.instance_name(reg.last))
            for reg in self._machine.visible_registers()
        }
        memories = {
            regfile.name: dict(sim.state.memories[regfile.name])
            for regfile in self._machine.visible_regfiles()
        }
        return SpecState(registers=registers, memories=memories)

    def prefix(self, instructions: int) -> list[SpecState]:
        """Snapshots before instructions ``0..instructions`` (inclusive);
        the returned list may be longer than requested."""
        if self._sim is None:
            self._sim = Simulator(build_sequential(self._machine))
            self._states.append(self._snapshot())
        max_cycles = (instructions + 1) * self._machine.n_stages * 4
        while len(self._states) <= instructions and self._cycles < max_cycles:
            stimulus = (
                self._inputs(self._sim.cycle) if self._inputs is not None else {}
            )
            values = self._sim.step(stimulus)
            self._cycles += 1
            if values["seq.instr_done"]:
                self._states.append(self._snapshot())
        if len(self._states) <= instructions:
            raise RuntimeError(
                f"sequential reference retired only {len(self._states) - 1}"
                f" instructions in {self._cycles} cycles (wanted {instructions})"
            )
        return self._states


def collect_spec_states(
    machine: PreparedMachine,
    instructions: int,
    inputs: InputProvider | None = None,
    max_cycles: int | None = None,
) -> list[SpecState]:
    """Run the sequential machine and snapshot the visible state *before*
    each instruction ``0..instructions`` (inclusive: the state before the
    first not-yet-executed instruction is included).

    ``R_S^i`` of the paper is ``result[i]``.
    """
    module = build_sequential(machine)
    sim = Simulator(module)
    n = machine.n_stages
    max_cycles = max_cycles if max_cycles is not None else (instructions + 1) * n * 4

    def snapshot() -> SpecState:
        registers = {
            reg.name: sim.reg(reg.instance_name(reg.last))
            for reg in machine.visible_registers()
        }
        memories = {
            regfile.name: dict(sim.state.memories[regfile.name])
            for regfile in machine.visible_regfiles()
        }
        return SpecState(registers=registers, memories=memories)

    states = [snapshot()]
    cycles = 0
    while len(states) <= instructions and cycles < max_cycles:
        stimulus = inputs(sim.cycle) if inputs is not None else {}
        values = sim.step(stimulus)
        cycles += 1
        if values["seq.instr_done"]:
            states.append(snapshot())
    if len(states) <= instructions:
        raise RuntimeError(
            f"sequential reference retired only {len(states) - 1} instructions"
            f" in {cycles} cycles (wanted {instructions})"
        )
    return states


def check_data_consistency(
    machine: PreparedMachine,
    pipelined_module: Module | None,
    cycles: int,
    inputs: InputProvider | None = None,
    seq_inputs: InputProvider | None = None,
    trace: Trace | None = None,
    impl_states: list[SpecState] | None = None,
    spec_cache: SpecStateCache | None = None,
) -> ConsistencyReport:
    """The paper's data-consistency criterion via the scheduling function.

    Runs the pipelined module for ``cycles`` cycles, computes ``I(k, T)``
    from its ``ue`` trace, collects the specification states from the
    sequential machine, and checks ``R_I^T = R_S^{I(k,T)}`` for every
    visible register and register-file word in every cycle.

    Precomputed artifacts may be supplied instead of resimulating: a
    ``trace`` together with per-cycle ``impl_states`` (``cycles + 1``
    snapshots, the first taken before cycle 0) replaces the internal
    pipelined run, and a shared :class:`SpecStateCache` replaces the
    per-call sequential run.  The lockstep fault campaign uses both to
    check many mutants against one reference simulation.
    """
    if machine.speculations:
        raise ValueError(
            "scheduling-function consistency assumes no rollback; use"
            " compare_commit_streams for speculative machines"
        )
    n = machine.n_stages

    if trace is None or impl_states is None:
        if pipelined_module is None:
            raise ValueError(
                "need either pipelined_module or precomputed trace+impl_states"
            )
        sim = Simulator(pipelined_module)

        # Visible-state snapshots of the *implementation*, one per cycle.
        impl_states = []

        def impl_snapshot() -> SpecState:
            registers = {
                reg.name: sim.reg(reg.instance_name(reg.last))
                for reg in machine.visible_registers()
            }
            memories = {
                regfile.name: dict(sim.state.memories[regfile.name])
                for regfile in machine.visible_regfiles()
            }
            return SpecState(registers=registers, memories=memories)

        impl_states.append(impl_snapshot())
        for _ in range(cycles):
            stimulus = inputs(sim.cycle) if inputs is not None else {}
            sim.step(stimulus)
            impl_states.append(impl_snapshot())
        trace = sim.trace

    schedule = compute_schedule(trace, n)
    retired = schedule.instructions_retired()
    if spec_cache is not None:
        spec_states = spec_cache.prefix(schedule.instructions_fetched())
    else:
        spec_states = collect_spec_states(
            machine, schedule.instructions_fetched(), inputs=seq_inputs
        )

    violations: list[str] = []
    for t in range(cycles + 1):
        impl = impl_states[t]
        for reg in machine.visible_registers():
            k = reg.last - 1  # the stage that writes the architectural instance
            i = schedule(k, t)
            spec = spec_states[i]
            if impl.registers[reg.name] != spec.registers[reg.name]:
                violations.append(
                    f"cycle {t}: {reg.name} = {impl.registers[reg.name]:#x}"
                    f" != spec^{i} {spec.registers[reg.name]:#x}"
                )
        for regfile in machine.visible_regfiles():
            k = regfile.write_stage
            i = schedule(k, t)
            spec = spec_states[i]
            impl_mem = impl.memories[regfile.name]
            spec_mem = spec.memories[regfile.name]
            for addr in sorted(set(impl_mem) | set(spec_mem)):
                if impl_mem.get(addr, 0) != spec_mem.get(addr, 0):
                    violations.append(
                        f"cycle {t}: {regfile.name}[{addr}] ="
                        f" {impl_mem.get(addr, 0):#x} != spec^{i}"
                        f" {spec_mem.get(addr, 0):#x}"
                    )
    return ConsistencyReport(
        ok=not violations,
        cycles=cycles,
        instructions_retired=retired,
        violations=violations[:50],
    )


def commit_stream(
    trace: Trace, machine: PreparedMachine, exclude: set[str] | None = None
) -> dict[str, list[tuple]]:
    """Extract the architectural write sequences from the ``commit.*``
    probes, one ordered stream *per resource*: ``(addr, data)`` tuples for
    register files, ``(data,)`` tuples for visible registers.

    Per-resource streams are the right granularity for cross-machine
    comparison: one instruction's writes to different resources commit in
    different stages, so a single interleaved stream would depend on the
    pipeline's timing.
    """
    exclude = exclude or set()
    streams: dict[str, list[tuple]] = {}
    cycles = len(trace)
    for regfile in machine.visible_regfiles():
        name = regfile.name
        if name in exclude or f"commit.{name}.we" not in trace.probes:
            continue
        we = trace.probe(f"commit.{name}.we")
        wa = trace.probe(f"commit.{name}.wa")
        data = trace.probe(f"commit.{name}.data")
        streams[name] = [(wa[t], data[t]) for t in range(cycles) if we[t]]
    for reg in machine.visible_registers():
        name = reg.name
        if name in exclude or f"commit.{name}.we" not in trace.probes:
            continue
        we = trace.probe(f"commit.{name}.we")
        data = trace.probe(f"commit.{name}.data")
        streams[name] = [(data[t],) for t in range(cycles) if we[t]]
    return streams


def seq_commit_side(
    machine: PreparedMachine,
    seq_cycles: int,
    seq_inputs: InputProvider | None = None,
    exclude: set[str] | None = None,
) -> tuple[dict[str, list[tuple]], int]:
    """The sequential half of a commit-stream comparison: run the
    reference for ``seq_cycles`` and return ``(streams, retired)``.  The
    result is mutant-independent, so campaigns compute it once per core
    and pass it to :func:`compare_commit_streams` as ``seq_side``."""
    seq_module = build_sequential(machine)
    seq_sim = Simulator(seq_module)
    retired = 0
    for _ in range(seq_cycles):
        stimulus = seq_inputs(seq_sim.cycle) if seq_inputs is not None else {}
        values = seq_sim.step(stimulus)
        retired += values["seq.instr_done"]
    return commit_stream(seq_sim.trace, machine, exclude=exclude), retired


def compare_commit_streams(
    machine: PreparedMachine,
    pipelined_module: Module | None,
    cycles: int,
    inputs: InputProvider | None = None,
    seq_inputs: InputProvider | None = None,
    seq_cycles: int | None = None,
    pipe_trace: Trace | None = None,
    seq_side: tuple[dict[str, list[tuple]], int] | None = None,
) -> ConsistencyReport:
    """Run both elaborations and compare their per-resource architectural
    write streams prefix-wise (up to the shorter stream).  Works for
    speculative machines: squashed instructions never produce commit
    events.

    Registers that are speculation repair targets (e.g. a predicted PC)
    are excluded: their wrong-path writes are corrected by rollback rather
    than suppressed, so their raw write stream legitimately differs.

    A precomputed ``pipe_trace`` replaces the internal pipelined run, and
    ``seq_side`` (from :func:`seq_commit_side`) replaces the sequential
    one — both must cover the same cycle counts the defaults would use.
    """
    repaired = {
        target.split(".")[0]
        for spec in machine.speculations
        for target in spec.repairs
    }
    if pipe_trace is None:
        if pipelined_module is None:
            raise ValueError(
                "need either pipelined_module or a precomputed pipe_trace"
            )
        pipe_sim = Simulator(pipelined_module)
        for _ in range(cycles):
            stimulus = inputs(pipe_sim.cycle) if inputs is not None else {}
            pipe_sim.step(stimulus)
        pipe_trace = pipe_sim.trace
    pipe_streams = commit_stream(pipe_trace, machine, exclude=repaired)

    if seq_side is None:
        seq_cycles = (
            seq_cycles if seq_cycles is not None else cycles * machine.n_stages
        )
        seq_side = seq_commit_side(
            machine, seq_cycles, seq_inputs=seq_inputs, exclude=repaired
        )
    seq_streams, retired = seq_side

    violations: list[str] = []
    committed_anything = False
    for name in seq_streams:
        pipe_events = pipe_streams.get(name, [])
        seq_events = seq_streams[name]
        committed_anything = committed_anything or bool(pipe_events)
        length = min(len(pipe_events), len(seq_events))
        violations.extend(
            f"{name} commit {index}: pipelined {pipe_events[index]}"
            f" != sequential {seq_events[index]}"
            for index in range(length)
            if pipe_events[index] != seq_events[index]
        )
        if not pipe_events and seq_events:
            violations.append(f"pipelined machine never committed to {name}")
    return ConsistencyReport(
        ok=not violations,
        cycles=cycles,
        instructions_retired=retired,
        violations=violations[:50],
    )


@dataclass
class LivenessReport:
    """Outcome of the liveness check (paper, Section 6.3)."""

    ok: bool
    bound: int
    worst_latency: int
    instructions_checked: int
    violations: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def check_liveness(
    trace: Trace, n_stages: int, bound: int
) -> LivenessReport:
    """Every fetched instruction retires within ``bound`` cycles.

    Uses the scheduling function: instruction ``i`` is fetched in the first
    cycle with ``I(0, T) = i`` and retired in the first cycle with
    ``I(n-1, T) > i``.  Instructions still in flight at the end of the
    trace are ignored (their latency is unknown, not unbounded).
    """
    schedule = compute_schedule(trace, n_stages)
    worst = 0
    checked = 0
    violations: list[str] = []
    for i in range(schedule.instructions_retired()):
        fetched = schedule.fetch_cycle(i)
        retired = schedule.retire_cycle(i)
        if fetched is None or retired is None:
            continue
        latency = retired - fetched
        checked += 1
        worst = max(worst, latency)
        if latency > bound:
            violations.append(
                f"instruction {i}: latency {latency} exceeds bound {bound}"
            )
    return LivenessReport(
        ok=not violations,
        bound=bound,
        worst_latency=worst,
        instructions_checked=checked,
        violations=violations[:50],
    )
