"""The pipeline transformation tool (the paper's core contribution).

:func:`transform` takes a :class:`repro.machine.PreparedMachine` — a
stage-partitioned sequential design without forwarding or interlock — and
produces a pipelined netlist by

1. adding the **stall engine** (Section 3): full bits, stall chain, update
   enables, rollback;
2. synthesizing **forwarding logic** (Section 4) for every operand read of
   a register file written by a distant stage, using the designer-named
   forwarding registers;
3. adding **interlock** (Section 4.1.1): data-hazard signals wherever
   forwarding might fail, feeding the stall chain;
4. adding **speculation hardware** (Section 5): guess pipelines, compare
   logic, rollback generation, and state repair;
5. emitting **proof obligations** for the generated hardware
   (:mod:`repro.proofs`) — the machine-checkable counterpart of the
   paper's generated PVS proofs.

The datapath itself is shared with the sequential elaboration
(:mod:`repro.machine.elaborate`); the transformation only changes where
``ue_k`` comes from and substitutes the forwarding networks ``g^k_R`` for
the direct operand reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import expr as E
from ..hdl.netlist import Module
from ..hdl.subst import substitute
from ..machine.elaborate import drive_latency_counters, elaborate_datapath
from ..machine.prepared import MachineSpecError, PreparedMachine, SpeculationSpec
from . import stall_engine as se
from .forwarding import FORWARDING_STYLES, ForwardingBuilder, ForwardingNetwork


@dataclass(frozen=True)
class TransformOptions:
    """Knobs of the transformation.

    * ``forwarding_style`` — ``"chain"`` (Figure 2 priority muxes),
      ``"tree"`` (find-first-one + balanced tree) or ``"bus"`` (one-hot
      operand bus); all three compute the same function.
    * ``interlock_only`` — synthesize no forwarding values at all; every
      hit interlocks until the writer has committed.  This is the baseline
      pipeline the paper's forwarding logic is compared against.
    """

    forwarding_style: str = "chain"
    interlock_only: bool = False

    def __post_init__(self) -> None:
        if self.forwarding_style not in FORWARDING_STYLES:
            raise ValueError(
                f"unknown forwarding style {self.forwarding_style!r};"
                f" use one of {FORWARDING_STYLES}"
            )


@dataclass
class SpeculationHardware:
    """Generated compare/rollback hardware for one speculation annotation."""

    spec: SpeculationSpec
    mispredict: E.Expr
    guessed: E.Expr  # the piped guess as seen at the resolve stage
    actual: E.Expr


@dataclass
class PipelinedMachine:
    """The transformation result: netlist + synthesized-structure metadata."""

    module: Module
    machine: PreparedMachine
    options: TransformOptions
    engine: se.StallEngine
    networks: list[ForwardingNetwork] = field(default_factory=list)
    speculations: list[SpeculationHardware] = field(default_factory=list)
    # Designer-declared scheduling oracles, rewritten with the declaring
    # stage's g^k so they alias the exact decision nodes in the netlist.
    oracles: list[E.Expr] = field(default_factory=list)

    @property
    def n_stages(self) -> int:
        return self.machine.n_stages

    def networks_for(self, regfile: str, stage: int | None = None) -> list[ForwardingNetwork]:
        return [
            net
            for net in self.networks
            if net.regfile == regfile and (stage is None or net.stage == stage)
        ]


def _guess_pipe_name(spec: SpeculationSpec, stage: int) -> str:
    return spec.guess_name(stage)


def transform(
    machine: PreparedMachine, options: TransformOptions | None = None
) -> PipelinedMachine:
    """Transform a prepared sequential machine into a pipelined machine."""
    machine.validate()
    options = options or TransformOptions()
    module = Module(f"{machine.name}.pipelined")
    n = machine.n_stages

    # ---- 1. stall engine state -------------------------------------------------
    full = se.declare_full_bits(module, n)
    ext: list[E.Expr] = []
    for stage in range(n):
        if stage in machine.external_stalls:
            ext.append(module.add_input(f"ext.{stage}", 1))
        else:
            ext.append(E.const(1, 0))

    # ---- 2. forwarding: per-stage operand substitution --------------------------
    builder = ForwardingBuilder(
        machine,
        module,
        full,
        style=options.forwarding_style,
        interlock_only=options.interlock_only,
    )

    # g^k substitution state: per-stage map (regfile, id(addr)) -> network
    # for register files, (reg,) -> network for plain registers, plus a
    # shared memo so common sub-expressions rewrite once per stage.
    stage_networks: dict[int, dict[tuple, ForwardingNetwork]] = {
        k: {} for k in range(n)
    }
    stage_memos: dict[int, dict[int, E.Expr]] = {k: {} for k in range(n)}
    # architectural instance name -> base register, for site discovery
    arch_instances = {
        reg.instance_name(reg.last): reg.name
        for reg in machine.registers.values()
    }

    def rewrite(stage: int, expression: E.Expr) -> E.Expr:
        """The pipelined machine's input-generation function g^stage."""
        nets = stage_networks[stage]

        def mem_builder(name: str):
            def build(addr: E.Expr) -> E.Expr:
                network = nets.get((name, id(addr)))
                if network is None:
                    raise MachineSpecError(
                        f"internal error: unsynthesized read of {name!r}"
                        f" in stage {stage}"
                    )
                return network.g

            return build

        mem_map = {
            name: mem_builder(name)
            for name in machine.regfiles
            if builder.is_forwarded(name, stage)
        }
        reg_map = {
            machine.registers[key[0]].instance_name(
                machine.registers[key[0]].last
            ): network.g
            for key, network in nets.items()
            if len(key) == 1
        }
        if not mem_map and not reg_map:
            return expression
        return substitute(
            expression, reg_map=reg_map, mem_map=mem_map, memo=stage_memos[stage]
        )

    builder.rewrite = rewrite

    # ---- 3. walk stages deep -> shallow, synthesizing read sites ---------------
    # Plain-register sites are synthesized before register-file sites: a
    # register-file *read address* may itself contain a forwarded register
    # read (e.g. an instruction fetch addressed by the forwarded delayed
    # PC), and must be rewritten before the address comparators are built.
    dhaz: list[E.Expr] = [E.const(1, 0)] * n
    for stage in range(n - 1, -1, -1):
        roots = _stage_roots(machine, stage)
        reg_sites, file_sites = _forwarded_read_sites(
            builder, roots, stage, arch_instances
        )
        contributions: list[E.Expr] = []
        for reg_name in reg_sites:
            network = builder.build_reg_read(reg_name, stage)
            stage_networks[stage][(reg_name,)] = network
            contributions.append(network.dhaz)
        for regfile_name, addr in file_sites:
            rewritten_addr = rewrite(stage, addr)
            network = builder.build_read(regfile_name, stage, rewritten_addr)
            stage_networks[stage][(regfile_name, id(rewritten_addr))] = network
            contributions.append(network.dhaz)
        dhaz[stage] = E.any_of(contributions)
        builder.stage_dhaz[stage] = dhaz[stage]

    # ---- 4. stall chain ----------------------------------------------------------
    # Designer-declared stall conditions (multi-cycle units) join the
    # external stall requests; they are rewritten with the stage's g^k so
    # they may read forwarded operands.
    for stage in range(n):
        conditions = [
            rewrite(stage, condition)
            for condition in machine.stall_conditions_for(stage)
        ]
        if conditions:
            ext[stage] = E.bor(ext[stage], E.any_of(conditions))
    stall = se.build_stall_chain(full, dhaz, ext)

    # ---- 5. speculation hardware ---------------------------------------------------
    rollback: list[E.Expr] = [E.const(1, 0)] * n
    spec_hardware: list[SpeculationHardware] = []
    for spec in machine.speculations:
        hardware = _build_speculation(
            machine, module, spec, full, stall, rewrite
        )
        spec_hardware.append(hardware)
        rollback[spec.resolve_stage] = E.bor(
            rollback[spec.resolve_stage], hardware.mispredict
        )

    # ---- 6. update enables + full-bit updates ----------------------------------------
    prime = se.build_rollback_prime(rollback)
    ue = se.build_update_enables(full, stall, prime)
    se.drive_full_bits(module, ue, stall, prime)
    engine = se.StallEngine(
        n_stages=n,
        full=full,
        dhaz=dhaz,
        ext=ext,
        stall=stall,
        rollback=rollback,
        rollback_prime=prime,
        ue=ue,
    )

    # ---- 7. shared datapath -------------------------------------------------------------
    elaborate_datapath(module, machine, ue, rewrite=rewrite)
    drive_latency_counters(module, machine, ue, occupied=full)

    # ---- 8. deferred drives: valid bits and guess pipes -----------------------------------
    for pending in builder.pending:
        module.drive_register(
            pending.name, pending.build(rewrite), enable=ue[pending.next_stage]
        )
    for spec, hardware in zip(machine.speculations, spec_hardware):
        for j in range(spec.guess_stage + 1, spec.resolve_stage + 1):
            source: E.Expr = (
                rewrite(spec.guess_stage, spec.guess)
                if j - 1 == spec.guess_stage
                else E.reg_read(_guess_pipe_name(spec, j - 1), spec.guess.width)
            )
            module.drive_register(
                _guess_pipe_name(spec, j), source, enable=ue[j - 1]
            )

    # ---- 9. speculation repairs ------------------------------------------------------------
    _apply_repairs(machine, module, spec_hardware, rewrite)

    # ---- 10. probes -------------------------------------------------------------------------
    se.add_probes(module, engine)
    for hardware in spec_hardware:
        module.add_probe(f"spec.{hardware.spec.name}.mispredict", hardware.mispredict)
        module.add_probe(f"spec.{hardware.spec.name}.guessed", hardware.guessed)
        module.add_probe(f"spec.{hardware.spec.name}.actual", hardware.actual)
    for index, network in enumerate(builder.networks):
        prefix = f"fwd.{network.regfile}.{network.stage}.{index}"
        module.add_probe(f"{prefix}.g", network.g)
        module.add_probe(f"{prefix}.dhaz", network.dhaz)
        for j in network.hit_stages:
            module.add_probe(f"{prefix}.hit.{j}", network.hits[j])

    module.validate()
    return PipelinedMachine(
        module=module,
        machine=machine,
        options=options,
        engine=engine,
        networks=builder.networks,
        speculations=spec_hardware,
        oracles=[rewrite(stage, expr) for stage, expr in machine.oracles],
    )


def _stage_roots(machine: PreparedMachine, stage: int) -> list[E.Expr]:
    """All designer expressions evaluated in the context of ``stage``."""
    roots: list[E.Expr] = []
    for out in machine.writes_of_stage(stage):
        roots.append(out.value)
        if out.we is not None:
            roots.append(out.we)
    for regfile in machine.regfiles.values():
        if regfile.we is None:
            continue
        if regfile.compute_stage == stage:
            roots.extend((regfile.we, regfile.wa))
        if regfile.write_stage == stage:
            roots.append(regfile.data)
    roots.extend(machine.stall_conditions_for(stage))
    for spec in machine.speculations:
        if spec.guess_stage == stage:
            roots.append(spec.guess)
        if spec.resolve_stage == stage:
            roots.append(spec.actual)
            if spec.check_if is not None:
                roots.append(spec.check_if)
            roots.extend(spec.repairs.values())
    return roots


def _forwarded_read_sites(
    builder: ForwardingBuilder,
    roots: list[E.Expr],
    stage: int,
    arch_instances: dict[str, str],
) -> tuple[list[str], list[tuple[str, E.Expr]]]:
    """Forwarded reads performed by ``stage``: plain-register names, and
    distinct (register file, address expression) pairs.  Order is
    deterministic (DAG discovery order)."""
    reg_sites: list[str] = []
    file_sites: list[tuple[str, E.Expr]] = []
    seen: set[tuple] = set()
    for node in E.walk(roots):
        if isinstance(node, E.MemRead) and builder.is_forwarded(node.mem, stage):
            key = (node.mem, id(node.addr))
            if key not in seen:
                seen.add(key)
                file_sites.append((node.mem, node.addr))
        elif isinstance(node, E.RegRead) and node.name in arch_instances:
            base = arch_instances[node.name]
            if (base,) not in seen and builder.is_forwarded_register(base, stage):
                seen.add((base,))
                reg_sites.append(base)
    return reg_sites, file_sites


def _build_speculation(
    machine: PreparedMachine,
    module: Module,
    spec: SpeculationSpec,
    full: list[E.Expr],
    stall: list[E.Expr],
    rewrite,
) -> SpeculationHardware:
    """Compare piped guess against the actual value at the resolve stage.

    The comparison fires only when the stage is full and not stalled
    (Section 5: "in order to ensure that the input operands are valid").
    """
    r = spec.resolve_stage
    for j in range(spec.guess_stage + 1, r + 1):
        module.add_register(_guess_pipe_name(spec, j), spec.guess.width)
    guessed: E.Expr = (
        rewrite(spec.guess_stage, spec.guess)
        if r == spec.guess_stage
        else E.reg_read(_guess_pipe_name(spec, r), spec.guess.width)
    )
    actual = rewrite(r, spec.actual)
    mismatch = E.ne(guessed, actual)
    mispredict = E.band(E.band(full[r], E.bnot(stall[r])), mismatch)
    if spec.check_if is not None:
        mispredict = E.band(mispredict, rewrite(r, spec.check_if))
    return SpeculationHardware(
        spec=spec, mispredict=mispredict, guessed=guessed, actual=actual
    )


def _apply_repairs(
    machine: PreparedMachine,
    module: Module,
    spec_hardware: list[SpeculationHardware],
    rewrite,
) -> None:
    """On rollback, override the repaired registers with the correct values
    ("the correct value is used as input for subsequent calculations").

    When several speculations repair the same register in one cycle, the
    deepest resolve stage (the oldest instruction) wins.
    """
    ordered = sorted(spec_hardware, key=lambda h: h.spec.resolve_stage)
    for hardware in ordered:
        for target, value in hardware.spec.repairs.items():
            reg = module.registers[target]
            repaired = rewrite(hardware.spec.resolve_stage, value)
            module.drive_register(
                target,
                E.mux(hardware.mispredict, repaired, reg.next),
                enable=E.bor(reg.enable, hardware.mispredict),
            )
