"""The stall engine (paper, Section 3).

The stall engine turns per-stage hazard/stall conditions into the update
enable signals ``ue_k``, allowing execution to stall in some stages while
proceeding in the stages below (including removal of pipeline bubbles).
It is extended with the rollback (squashing) mechanism used for
speculation.

Signal definitions, verbatim from the paper:

* ``full_0 = 1``; ``full_k = fullb.k`` for ``k >= 1``;
* ``rollback'_k = OR_{i=k}^{n-1} rollback_i`` — the instruction in stage
  ``k`` has to be squashed;
* ``ue_k = full_k AND NOT stall_k AND NOT rollback'_k``;
* ``stall_{n-1} = (dhaz_{n-1} OR ext_{n-1}) AND full_{n-1}``,
  ``stall_k = (dhaz_k OR ext_k OR stall_{k+1}) AND full_k``;
* ``fullb.s := ue_{s-1} OR stall_s`` (a stage becomes full if it is
  updated or stalled), gated with ``NOT rollback'_s`` so squashed
  instructions vanish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl import expr as E
from ..hdl.netlist import Module


def full_bit_name(stage: int) -> str:
    return f"fullb.{stage}"


@dataclass
class StallEngine:
    """All stall-engine signals as expressions over the module's state.

    Indexing: every list has one entry per stage ``0..n-1``.
    """

    n_stages: int
    full: list[E.Expr] = field(default_factory=list)
    dhaz: list[E.Expr] = field(default_factory=list)
    ext: list[E.Expr] = field(default_factory=list)
    stall: list[E.Expr] = field(default_factory=list)
    rollback: list[E.Expr] = field(default_factory=list)
    rollback_prime: list[E.Expr] = field(default_factory=list)
    ue: list[E.Expr] = field(default_factory=list)


def declare_full_bits(module: Module, n_stages: int) -> list[E.Expr]:
    """Declare the ``fullb.s`` registers (stages 1..n-1) and return the
    ``full_k`` expressions.  Stage 0 is always full (an instruction can
    always be fetched)."""
    full: list[E.Expr] = [E.const(1, 1)]
    for stage in range(1, n_stages):
        full.append(module.add_register(full_bit_name(stage), 1, init=0))
    return full


def build_stall_chain(
    full: list[E.Expr], dhaz: list[E.Expr], ext: list[E.Expr]
) -> list[E.Expr]:
    """``stall_k`` from the hazard and external-stall conditions.

    A stall propagates upward: stage ``k`` stalls if it has a hazard, an
    external stall, or stage ``k+1`` is stalled — and only if it is full
    (empty stages cannot stall, which is what enables bubble removal).
    """
    n = len(full)
    stall: list[E.Expr] = [E.const(1, 0)] * n
    stall[n - 1] = E.band(E.bor(dhaz[n - 1], ext[n - 1]), full[n - 1])
    for k in range(n - 2, -1, -1):
        stall[k] = E.band(E.bor(E.bor(dhaz[k], ext[k]), stall[k + 1]), full[k])
    return stall


def build_rollback_prime(rollback: list[E.Expr]) -> list[E.Expr]:
    """``rollback'_k = OR_{i=k}^{n-1} rollback_i``."""
    n = len(rollback)
    prime: list[E.Expr] = [E.const(1, 0)] * n
    prime[n - 1] = rollback[n - 1]
    for k in range(n - 2, -1, -1):
        prime[k] = E.bor(rollback[k], prime[k + 1])
    return prime


def build_update_enables(
    full: list[E.Expr], stall: list[E.Expr], rollback_prime: list[E.Expr]
) -> list[E.Expr]:
    """``ue_k = full_k AND NOT stall_k AND NOT rollback'_k``."""
    return [
        E.band(E.band(f, E.bnot(s)), E.bnot(r))
        for f, s, r in zip(full, stall, rollback_prime)
    ]


def drive_full_bits(
    module: Module,
    ue: list[E.Expr],
    stall: list[E.Expr],
    rollback_prime: list[E.Expr],
) -> None:
    """``fullb.s := (ue_{s-1} OR stall_s) AND NOT rollback'_s``."""
    n = len(ue)
    for stage in range(1, n):
        module.drive_register(
            full_bit_name(stage),
            E.band(
                E.bor(ue[stage - 1], stall[stage]), E.bnot(rollback_prime[stage])
            ),
        )


def build_stall_engine(
    module: Module,
    n_stages: int,
    dhaz: list[E.Expr],
    ext: list[E.Expr],
    rollback: list[E.Expr],
    full: list[E.Expr],
) -> StallEngine:
    """Assemble the complete stall engine from already-declared full bits
    and the per-stage hazard/external/rollback conditions; drives the full
    bit registers and returns all signals."""
    if not (
        len(dhaz) == len(ext) == len(rollback) == len(full) == n_stages
    ):
        raise ValueError("per-stage signal lists must have length n_stages")
    stall = build_stall_chain(full, dhaz, ext)
    prime = build_rollback_prime(rollback)
    ue = build_update_enables(full, stall, prime)
    drive_full_bits(module, ue, stall, prime)
    return StallEngine(
        n_stages=n_stages,
        full=full,
        dhaz=dhaz,
        ext=ext,
        stall=stall,
        rollback=rollback,
        rollback_prime=prime,
        ue=ue,
    )


def add_probes(module: Module, engine: StallEngine) -> None:
    """Expose every stall-engine signal for tracing and verification.
    (``ue.{k}`` probes are added by the shared datapath elaboration.)"""
    for k in range(engine.n_stages):
        module.add_probe(f"full.{k}", engine.full[k])
        module.add_probe(f"stall.{k}", engine.stall[k])
        module.add_probe(f"dhaz.{k}", engine.dhaz[k])
        module.add_probe(f"ext.{k}", engine.ext[k])
        module.add_probe(f"rollback.{k}", engine.rollback[k])
        module.add_probe(f"rollback_prime.{k}", engine.rollback_prime[k])
