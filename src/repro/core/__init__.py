"""The pipeline transformation: stall engine, forwarding, interlock,
speculation, and the associated correctness checks."""

from .consistency import (
    ConsistencyReport,
    LivenessReport,
    SpecState,
    SpecStateCache,
    check_data_consistency,
    check_liveness,
    collect_spec_states,
    commit_stream,
    compare_commit_streams,
    seq_commit_side,
)
from .forwarding import (
    FORWARDING_STYLES,
    ForwardingBuilder,
    ForwardingNetwork,
    valid_bit_name,
)
from .scheduling import Lemma1Report, Schedule, check_lemma1, compute_schedule
from .stall_engine import StallEngine, full_bit_name
from .transform import (
    PipelinedMachine,
    SpeculationHardware,
    TransformOptions,
    transform,
)

__all__ = [
    "ConsistencyReport",
    "FORWARDING_STYLES",
    "ForwardingBuilder",
    "ForwardingNetwork",
    "Lemma1Report",
    "LivenessReport",
    "PipelinedMachine",
    "Schedule",
    "SpecState",
    "SpecStateCache",
    "SpeculationHardware",
    "StallEngine",
    "TransformOptions",
    "check_data_consistency",
    "check_lemma1",
    "check_liveness",
    "collect_spec_states",
    "commit_stream",
    "compare_commit_streams",
    "compute_schedule",
    "full_bit_name",
    "seq_commit_side",
    "transform",
    "valid_bit_name",
]
