"""Forwarding synthesis (paper, Section 4).

For every operand read of a register file ``R`` (written by stage ``w``)
performed in a stage ``k`` with ``w not in {k-1, k}``, the tool generates:

* *hit signals* ``R^k_hit[j] = full_j AND Rwe.j AND (f^k_Rra == Rwa.j)``
  for ``j in {k+1, ..., w}``, comparing the read address against the
  precomputed write addresses piped down the pipe (the ``=?`` boxes of
  Figure 2);
* a *valid-bit pipeline* ``Qv.j`` per forwarded register file, tracking
  whether the designated forwarding register already holds the final
  value: ``Q^j_valid = Qv.j OR f^j_Qwe`` with ``Qv.j := Q^{j-1}_valid``;
* the input-generation function ``g^k_R``: a priority selection over the
  hit stages — the youngest hit (smallest ``j``) wins; a hit in stage
  ``j < w`` takes ``f^j_Q`` if ``f^j_Qwe`` else ``Q.j``; a hit in stage
  ``w`` takes the register-file input ``f^w_R``; no hit falls through to
  the architectural register file ``R.(w+1)[a]``;
* the *data hazard* contribution: the selected hit is not valid yet, or
  stage ``top`` itself has a data hazard (paper, Section 4.1.1).

Three hardware styles realise the same selection function (Section 4.2:
"with larger pipelines, one can use a find-first-one circuit and a
balanced tree of multiplexers or an operand bus with tri-state drivers"):

* ``"chain"`` — nested priority muxes (Figure 2, linear delay);
* ``"tree"``  — find-first-one + balanced mux tree (log delay);
* ``"bus"``   — find-first-one + one-hot AND-OR bus (tri-state model).

With ``interlock_only=True`` no value is ever forwarded: every hit raises
a data hazard, yielding the interlock-only baseline pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..hdl import expr as E
from ..hdl.library import find_first_one, onehot_mux, priority_mux, tree_select
from ..hdl.netlist import Module
from ..machine.elaborate import precomputed_wa, precomputed_we
from ..machine.prepared import MachineSpecError, PreparedMachine

FORWARDING_STYLES = ("chain", "tree", "bus")

# rewriter(stage, expr): the stage's input-generation substitution g^stage.
Rewriter = Callable[[int, E.Expr], E.Expr]


def valid_bit_name(regfile: str, stage: int) -> str:
    return f"fwd.{regfile}.v.{stage}"


def regfile_needs_forwarding(
    machine: PreparedMachine, regfile_name: str, stage: int
) -> bool:
    """Does a read of ``regfile_name`` in ``stage`` need forwarding?

    Paper, Section 4.1: "If an instance of R is either output of stage
    k-1 or stage k, nothing needs to be changed."  Shared between the
    synthesis (:class:`ForwardingBuilder`) and the static hazard audit
    (:mod:`repro.lint.hazards`) so both enumerate the same read sites.
    """
    regfile = machine.regfiles[regfile_name]
    if regfile.read_only or not regfile.visible:
        return False
    if regfile.write_stage in (stage - 1, stage):
        return False
    if regfile.write_stage < stage - 1:
        raise MachineSpecError(
            f"stage {stage} reads {regfile_name!r} which is written by the"
            f" earlier stage {regfile.write_stage}; in a pipeline younger"
            " instructions would already have overwritten it — pipe the"
            " value forward through register instances instead"
        )
    return True


def register_needs_forwarding(
    machine: PreparedMachine, reg_name: str, stage: int
) -> bool:
    """Does a read of the architectural instance of plain register
    ``reg_name`` in ``stage`` need forwarding?  Same rule as for register
    files; the address comparison is simply omitted."""
    reg = machine.registers[reg_name]
    w = reg.write_stage
    if w in (stage - 1, stage):
        return False
    if w < stage - 1:
        raise MachineSpecError(
            f"stage {stage} reads {reg_name}.{reg.last} which is written"
            f" by the earlier stage {w}; pipe the value forward through"
            " register instances instead"
        )
    return True


@dataclass
class ForwardingNetwork:
    """The synthesized forwarding hardware for one read site."""

    regfile: str  # forwarded state: a register file or a plain register
    stage: int  # k — the stage performing the read
    read_addr: E.Expr | None  # f^k_Rra (after rewriting); None for registers
    hit_stages: list[int]  # k+1 .. w
    hits: dict[int, E.Expr]
    values: dict[int, E.Expr]
    g: E.Expr  # the generated input value g^k_R
    dhaz: E.Expr  # this read's contribution to dhaz_k
    style: str
    comparators: int  # number of =? equality testers generated
    fallback: E.Expr | None = None  # the architectural read (no-hit case)
    # per-hit-stage hazard contribution: Const 1 = the hit interlocks,
    # Const 0 = the forwarded value is always final, anything else = the
    # valid-bit protection.  The static hazard audit checks every stage
    # is either forwarded or interlocked through this map.
    hazards: dict[int, E.Expr] = field(default_factory=dict)

    @property
    def write_stage(self) -> int:
        return self.hit_stages[-1]


@dataclass
class PendingDrive:
    """A register drive deferred until the update enables exist."""

    name: str
    next_stage: int  # the stage whose ue clocks the register
    # build(rewrite) -> next-value expression; called once rewriters exist
    build: Callable[[Rewriter], E.Expr]


@dataclass
class ValidChain:
    """Valid-bit pipeline bookkeeping for one register file.

    Valid expressions are computed on demand (and cached): stage ``j``'s
    expression must only be requested once stage ``j``'s operand
    substitution is final, which the deep-to-shallow processing order of
    the transform guarantees.
    """

    regfile: str
    seed_stage: int
    last_stage: int
    _cache: dict[int, E.Expr] = field(default_factory=dict)

    def valid_expr(self, builder: "ForwardingBuilder", j: int) -> E.Expr:
        """``Q^j_valid = Qv.j OR f^j_Qwe`` (``Qv.seed`` is constant 0)."""
        if j in self._cache:
            return self._cache[j]
        if not self.seed_stage <= j <= self.last_stage:
            return E.const(1, 0)
        prev: E.Expr = (
            E.const(1, 0)
            if j == self.seed_stage
            else E.reg_read(valid_bit_name(self.regfile, j), 1)
        )
        we = builder._producer_we(self.regfile, j)
        valid = prev if we is None else E.bor(prev, builder.rewrite(j, we))
        self._cache[j] = valid
        return valid


class ForwardingBuilder:
    """Synthesizes forwarding networks for a prepared machine.

    The builder is driven by :func:`repro.core.transform.transform`; stages
    are processed from the deepest to the shallowest so that a stage's
    hazard signal can refer to the hazard signals of the stages below it
    (paper: "we enable dhaz_k if the data hazard signal of stage top is
    active").
    """

    def __init__(
        self,
        machine: PreparedMachine,
        module: Module,
        full: list[E.Expr],
        style: str = "chain",
        interlock_only: bool = False,
    ) -> None:
        if style not in FORWARDING_STYLES:
            raise ValueError(
                f"unknown forwarding style {style!r}; use one of {FORWARDING_STYLES}"
            )
        self.machine = machine
        self.module = module
        self.full = full
        self.style = style
        self.interlock_only = interlock_only
        self.networks: list[ForwardingNetwork] = []
        self.pending: list[PendingDrive] = []
        # dhaz_j of deeper stages, filled in by the transform as it walks
        # stages from deep to shallow.
        self.stage_dhaz: dict[int, E.Expr] = {}
        self._chains: dict[str, ValidChain] = {}

    # -- forwardability ----------------------------------------------------------

    def is_forwarded(self, regfile_name: str, stage: int) -> bool:
        """See :func:`regfile_needs_forwarding`."""
        return regfile_needs_forwarding(self.machine, regfile_name, stage)

    def is_forwarded_register(self, reg_name: str, stage: int) -> bool:
        """See :func:`register_needs_forwarding`."""
        return register_needs_forwarding(self.machine, reg_name, stage)

    # -- valid-bit pipelines --------------------------------------------------------

    def _producer_we(self, regfile_name: str, stage: int) -> E.Expr | None:
        """``f^stage_Qwe`` OR-ed over the chain registers of ``regfile``
        that stage ``stage`` computes; None if the stage produces nothing."""
        chain_regs = {f.reg for f in self.machine.forwarding_for(regfile_name)}
        terms: list[E.Expr] = []
        for reg in sorted(chain_regs):
            out = self.machine.output_for(stage, reg)
            if out is None:
                continue
            terms.append(out.we if out.we is not None else E.const(1, 1))
        if not terms:
            return None
        return E.any_of(terms)

    def valid_chain(self, regfile_name: str) -> ValidChain | None:
        """Declare (once) the valid-bit pipeline of a register file and
        return the per-stage valid expressions.

        Returns None when the machine annotates no forwarding registers for
        the file (interlock-only for that file)."""
        if regfile_name in self._chains:
            return self._chains[regfile_name]
        annotations = self.machine.forwarding_for(regfile_name)
        if not annotations:
            return None
        if regfile_name in self.machine.regfiles:
            w = self.machine.regfiles[regfile_name].write_stage
        else:
            w = self.machine.registers[regfile_name].write_stage
        producer_stages = [
            j for j in range(w) if self._producer_we(regfile_name, j) is not None
        ]
        if not producer_stages:
            raise MachineSpecError(
                f"forwarding registers of {regfile_name!r} are never written"
            )
        seed = producer_stages[0]
        last = max(f.stage for f in annotations)
        chain = ValidChain(regfile=regfile_name, seed_stage=seed, last_stage=last)

        for j in range(seed + 1, last + 1):
            self.module.add_register(valid_bit_name(regfile_name, j), 1)
            prev_stage = j - 1
            self.pending.append(
                PendingDrive(
                    name=valid_bit_name(regfile_name, j),
                    next_stage=prev_stage,
                    build=lambda rewrite, c=chain, s=prev_stage: c.valid_expr(self, s),
                )
            )
        self._chains[regfile_name] = chain
        return chain

    # The transform installs the real per-stage rewriter here; until then
    # (and for already-processed deeper stages) expressions are rewritten
    # immediately.
    rewrite: Rewriter = staticmethod(lambda stage, expression: expression)

    def _rewritten(self, stage: int, expression: E.Expr) -> E.Expr:
        return self.rewrite(stage, expression)

    # -- the generic forwarding algorithm ----------------------------------------------

    def build_read(
        self, regfile_name: str, stage: int, read_addr: E.Expr
    ) -> ForwardingNetwork:
        """Synthesize ``g^stage_R`` and the hazard contribution for one read
        of ``regfile_name`` at (already rewritten) address ``read_addr``."""
        machine = self.machine
        regfile = machine.regfiles[regfile_name]
        w = regfile.write_stage
        k = stage
        if not self.is_forwarded(regfile_name, k):
            raise MachineSpecError(
                f"read of {regfile_name!r} in stage {k} needs no forwarding"
            )
        if regfile.compute_stage is None:
            raise MachineSpecError(
                f"register file {regfile_name!r} has no write interface"
            )
        if regfile.compute_stage > k + 1:
            raise MachineSpecError(
                f"cannot forward {regfile_name!r} into stage {k}: write"
                f" enable/address are only known from stage"
                f" {regfile.compute_stage} on (precompute them earlier)"
            )

        hit_stages = list(range(k + 1, w + 1))
        hits: dict[int, E.Expr] = {}
        fallback = E.mem_read(regfile_name, read_addr, regfile.data_width)
        for j in hit_stages:
            we_j = precomputed_we(machine, regfile_name, j, self.rewrite)
            wa_j = precomputed_wa(machine, regfile_name, j, self.rewrite)
            hits[j] = E.band(E.band(self.full[j], we_j), E.eq(read_addr, wa_j))
        top_value = self._rewritten(w, regfile.data)
        return self._assemble(
            name=regfile_name,
            stage=k,
            w=w,
            width=regfile.data_width,
            read_addr=read_addr,
            hit_stages=hit_stages,
            hits=hits,
            fallback=fallback,
            top_value=top_value,
            comparators=len(hit_stages),
        )

    def build_reg_read(self, reg_name: str, stage: int) -> ForwardingNetwork:
        """Synthesize forwarding for a read of the architectural instance of
        a *plain* register (no register file).  The address comparison is
        omitted (paper, Section 4.1): ``hit[j] = full_j AND Rwe.j``."""
        machine = self.machine
        reg = machine.registers[reg_name]
        w = reg.write_stage
        k = stage
        if not self.is_forwarded_register(reg_name, k):
            raise MachineSpecError(
                f"read of {reg_name!r} in stage {k} needs no forwarding"
            )
        out = machine.output_for(w, reg.name)
        if out is None:
            # pure pass-through into the architectural instance
            we: E.Expr | None = None
            top_value: E.Expr = E.reg_read(
                reg.instance_name(reg.last - 1), reg.width
            )
        else:
            we = out.we
            top_value = self._rewritten(w, out.value)

        hit_stages = list(range(k + 1, w + 1))
        hits: dict[int, E.Expr] = {}
        for j in hit_stages:
            if we is None:
                we_j: E.Expr = E.const(1, 1)
            elif isinstance(we, E.Const):
                we_j = we
            elif j == w:
                we_j = self._rewritten(w, we)
            else:
                raise MachineSpecError(
                    f"forwarding {reg_name!r} into stage {k}: the write"
                    f" enable of stage {w} is not available in stage {j};"
                    " make the write unconditional or precompute the enable"
                )
            hits[j] = E.band(self.full[j], we_j)
        fallback = E.reg_read(reg.instance_name(reg.last), reg.width)
        return self._assemble(
            name=reg_name,
            stage=k,
            w=w,
            width=reg.width,
            read_addr=None,
            hit_stages=hit_stages,
            hits=hits,
            fallback=fallback,
            top_value=top_value,
            comparators=0,
        )

    def _assemble(
        self,
        name: str,
        stage: int,
        w: int,
        width: int,
        read_addr: E.Expr | None,
        hit_stages: list[int],
        hits: dict[int, E.Expr],
        fallback: E.Expr,
        top_value: E.Expr,
        comparators: int,
    ) -> ForwardingNetwork:
        """Shared tail of the forwarding algorithm: per-stage values and
        hazards, priority selection in the chosen style, hazard OR."""
        machine = self.machine
        annotations = {f.stage: f for f in machine.forwarding_for(name)}
        chain = self.valid_chain(name)

        values: dict[int, E.Expr] = {}
        hazards: dict[int, E.Expr] = {}
        for j in hit_stages:
            if self.interlock_only:
                values[j] = fallback
                hazards[j] = E.const(1, 1)
            elif j == w:
                # top = w: take the value present at the register input.
                values[j] = top_value
                hazards[j] = E.const(1, 0)
            else:
                annotation = annotations.get(j)
                if annotation is None:
                    # No forwarding register for this stage: any hit here
                    # must interlock.
                    values[j] = fallback
                    hazards[j] = E.const(1, 1)
                else:
                    out = machine.output_for(j, annotation.reg)
                    q_reg = machine.registers[annotation.reg]
                    q_current = E.reg_read(q_reg.instance_name(j), q_reg.width)
                    if out is None:
                        value: E.Expr = q_current
                    else:
                        q_we = (
                            self._rewritten(j, out.we)
                            if out.we is not None
                            else E.const(1, 1)
                        )
                        value = E.mux(
                            q_we, self._rewritten(j, out.value), q_current
                        )
                    if value.width != width:
                        raise MachineSpecError(
                            f"forwarding register {annotation.reg!r} width"
                            f" {value.width} != {name!r} width {width}"
                        )
                    values[j] = value
                    valid_j = (
                        chain.valid_expr(self, j)
                        if chain is not None
                        else E.const(1, 0)
                    )
                    deeper_dhaz = self.stage_dhaz.get(j, E.const(1, 0))
                    hazards[j] = E.bor(E.bnot(valid_j), deeper_dhaz)

        ordered_hits = [hits[j] for j in hit_stages]
        ordered_values = [values[j] for j in hit_stages]

        if self.interlock_only:
            g = fallback
        elif self.style == "chain":
            g = priority_mux(ordered_hits, ordered_values, fallback)
        elif self.style == "tree":
            g = tree_select(ordered_hits, ordered_values, fallback)
        else:  # bus
            onehot = find_first_one(ordered_hits)
            none_hit = E.bnot(E.any_of(ordered_hits))
            g = onehot_mux(
                list(onehot) + [none_hit], ordered_values + [fallback]
            )

        # dhaz: the *selected* (top) hit is hazardous.
        onehot = find_first_one(ordered_hits)
        dhaz = E.any_of(
            E.band(first_hit, hazards[j])
            for first_hit, j in zip(onehot, hit_stages)
        )

        network = ForwardingNetwork(
            regfile=name,
            stage=stage,
            read_addr=read_addr,
            hit_stages=hit_stages,
            hits=hits,
            values=values,
            g=g,
            dhaz=dhaz,
            style=self.style,
            comparators=comparators,
            fallback=fallback,
            hazards=hazards,
        )
        self.networks.append(network)
        return network
