"""Scheduling functions (paper, Section 6.1).

``I(k, T) = i`` means instruction ``I_i`` is in stage ``k`` during cycle
``T``.  The paper's *total* scheduling function extends this to cycles in
which a stage is not full by anticipating the next instruction; it is
defined inductively from the update-enable trace:

* ``I(k, 0) = 0``;
* ``I(k, T) = I(k, T-1)`` if ``ue_k`` was off in cycle ``T-1``;
* ``I(0, T) = I(0, T-1) + 1`` if ``ue_0`` fired;
* ``I(k, T) = I(k-1, T-1)`` if ``ue_k`` fired, ``k != 0``.

This module computes the function from a simulation trace and checks the
paper's Lemma 1 on it.  (Like the paper's proofs, the scheduling function
assumes no rollback; squashing machines are checked via their commit
streams instead, see :mod:`repro.core.consistency`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.sim import Trace


@dataclass
class Schedule:
    """The scheduling function as a table: ``table[T][k] = I(k, T)``."""

    n_stages: int
    table: list[list[int]] = field(default_factory=list)

    def __call__(self, k: int, t: int) -> int:
        return self.table[t][k]

    @property
    def cycles(self) -> int:
        return len(self.table)

    def instructions_fetched(self) -> int:
        """Instructions that have entered stage 0 (``I(0, last)``)."""
        return self.table[-1][0] if self.table else 0

    def instructions_retired(self) -> int:
        """Instructions that have left the last stage."""
        return self.table[-1][self.n_stages - 1] if self.table else 0

    def retire_cycle(self, i: int) -> int | None:
        """First cycle T with ``I(n-1, T) > i`` (instruction ``i`` has left
        the pipe), or None if it never retires within the trace."""
        last = self.n_stages - 1
        for t, row in enumerate(self.table):
            if row[last] > i:
                return t
        return None

    def fetch_cycle(self, i: int) -> int | None:
        """First cycle T with ``I(0, T) == i`` and stage 0 full (trivially
        full in this model), i.e. the cycle instruction ``i`` entered."""
        for t, row in enumerate(self.table):
            if row[0] == i:
                return t
        return None


def compute_schedule(trace: Trace, n_stages: int) -> Schedule:
    """Evaluate the paper's inductive definition over a recorded trace.

    Requires the ``ue.{k}`` probes produced by the elaborations.  The trace
    row at index ``t`` holds the signals *during* cycle ``t``; the schedule
    table has one extra row for cycle ``len(trace)`` (the state after the
    final edge).
    """
    ue = [trace.probe(f"ue.{k}") for k in range(n_stages)]
    cycles = len(trace)
    schedule = Schedule(n_stages=n_stages, table=[[0] * n_stages])
    for t in range(cycles):
        previous = schedule.table[-1]
        row = list(previous)
        # Evaluate in increasing k so that I(k-1, T-1) is read from
        # `previous`, not the partially updated row.
        for k in range(n_stages):
            if ue[k][t]:
                row[k] = previous[0] + 1 if k == 0 else previous[k - 1]
        schedule.table.append(row)
    return schedule


@dataclass
class Lemma1Report:
    """Outcome of checking the paper's Lemma 1 on a trace."""

    ok: bool
    violations: list[str] = field(default_factory=list)
    cycles_checked: int = 0

    def __bool__(self) -> bool:
        return self.ok


def check_lemma1(trace: Trace, n_stages: int) -> Lemma1Report:
    """Check Lemma 1 of the paper on a concrete trace:

    1. ``I(k, T)`` increases by one exactly when ``ue_k`` fired;
    2. scheduling functions of adjoining stages differ by 0 or 1;
    3. ``full_k == 0  iff  I(k-1, T) == I(k, T)``.

    Requires ``ue.{k}`` and ``full.{k}`` probes (the latter only exist on
    pipelined machines — for the sequential machine only parts 1 and 2 are
    meaningful and ``full`` checks are skipped).
    """
    schedule = compute_schedule(trace, n_stages)
    ue = [trace.probe(f"ue.{k}") for k in range(n_stages)]
    has_full = all(f"full.{k}" in trace.probes for k in range(n_stages))
    full = (
        [trace.probe(f"full.{k}") for k in range(n_stages)] if has_full else None
    )
    violations: list[str] = []
    for t in range(len(trace)):
        for k in range(n_stages):
            # Part 1: increment iff ue.
            delta = schedule(k, t + 1) - schedule(k, t)
            if delta != ue[k][t]:
                violations.append(
                    f"lemma1.1: I({k},{t + 1}) - I({k},{t}) = {delta}"
                    f" but ue_{k} = {ue[k][t]}"
                )
        for k in range(1, n_stages):
            diff = schedule(k - 1, t) - schedule(k, t)
            if diff not in (0, 1):
                violations.append(
                    f"lemma1.2: I({k - 1},{t}) - I({k},{t}) = {diff} not in {{0,1}}"
                )
            if full is not None:
                if bool(full[k][t]) != (diff == 1):
                    violations.append(
                        f"lemma1.3: full_{k}^{t} = {full[k][t]} but diff = {diff}"
                    )
    return Lemma1Report(ok=not violations, violations=violations, cycles_checked=len(trace))
