"""repro — Automated Pipeline Design (Kroening & Paul, DAC 2001).

A from-scratch reproduction of the DAC 2001 pipeline-synthesis tool: given a
*prepared sequential machine* (a stage-partitioned sequential processor
without forwarding or interlock hardware), the tool generates the stall
engine, forwarding logic, interlock logic and speculation rollback hardware
of an equivalent pipelined machine — together with machine-checkable proof
obligations for data consistency and liveness.

Top-level layout:

* :mod:`repro.hdl` — bit-vectors, expression IR, netlists, simulator,
  structural cost/delay analysis.
* :mod:`repro.formal` — CDCL SAT solver, AIG bit-blaster, BDDs, bounded
  model checking and k-induction.
* :mod:`repro.machine` — the prepared sequential machine model and its
  elaboration to a round-robin sequential netlist.
* :mod:`repro.core` — the transformation itself: stall engine, forwarding,
  interlock, speculation; scheduling functions and consistency checking.
* :mod:`repro.proofs` — generated proof obligations and their discharge.
* :mod:`repro.dlx` — the DLX case study: ISA, assembler, reference
  simulator, prepared 5-stage machine, workloads.
* :mod:`repro.perf` — CPI metrics, workload generators, cost reporting.
"""

__version__ = "1.0.0"
