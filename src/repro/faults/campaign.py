"""The mutation campaign: inject every catalogued fault, demand detection.

For each mutant the runner walks a staged detection ladder, cheapest
detector first, stopping at the first kill:

1. **build** — the mutated netlist is rejected by structural validation;
2. **lint**  — :func:`repro.lint.lint_pipeline` reports an ERROR finding
   (the static hazard audit catching a dropped coverage record, a
   structural pass catching a never-enabled register, ...);
3. **absint** — the sequential abstract interpretation objects: the
   fixpoint-based semantic lint (:func:`repro.lint.lint_semantic`)
   reports an ERROR (a register provably frozen at its reset value), or
   a word of an instruction ROM concretely violates a declared invariant
   template (:func:`repro.absint.rom_template_violations`);
4. **taint** — the speculation-aware information-flow analysis
   (:func:`repro.lint.lint_taint`) reports an ERROR: speculative state
   reaches an architectural sink outside a commit guard, a rollback tag
   is bypassed, or a forwarding valid bit is provably forced early;
5. **trace** — a dynamic trace obligation fails: the mutated pipeline
   diverges from the sequential reference on the core's workload, or a
   scheduling/liveness trace check is violated;
6. **formal** — a SAT-discharged proof obligation produces a concrete
   counterexample (``Status.FAILED``; an ``unknown`` verdict does *not*
   count as detection).

A mutant surviving all six detectors is a **verifier soundness gap**:
the campaign's job is to prove the checker stack leaves none.  The
baseline (unmutated) design runs through the same ladder first and must
be detected by nothing — a noisy checker would make kills meaningless.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable

from ..absint import rom_template_violations
from ..core.transform import PipelinedMachine
from ..formal.bmc import TransitionSystem
from ..lint import lint_pipeline, lint_semantic, lint_taint
from ..proofs.discharge import (
    Status,
    build_trace,
    discharge_equivalence,
    discharge_invariant,
    discharge_trace,
    resolve_properties,
)
from ..proofs.obligations import generate_obligations
from .catalog import CORES, OPERATORS, CoreSpec, Mutant, generate_mutants

Progress = Callable[[str], None]


@dataclass
class MutantResult:
    """The campaign verdict for one mutant."""

    mid: str
    core: str
    operator: str
    site: str
    detected: bool
    detector: str = ""  # build | lint | absint | taint | trace | formal ("" = survived)
    detail: str = ""
    seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "mid": self.mid,
            "core": self.core,
            "operator": self.operator,
            "site": self.site,
            "detected": self.detected,
            "detector": self.detector,
            "detail": self.detail,
            "seconds": round(self.seconds, 4),
        }


@dataclass
class CampaignReport:
    """Aggregated mutation-coverage results across cores."""

    cores: list[str] = field(default_factory=list)
    operators: list[str] = field(default_factory=list)
    results: list[MutantResult] = field(default_factory=list)
    baseline_clean: dict[str, bool] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def survivors(self) -> list[MutantResult]:
        return [r for r in self.results if not r.detected]

    @property
    def killed(self) -> int:
        return sum(1 for r in self.results if r.detected)

    @property
    def score(self) -> float:
        return self.killed / len(self.results) if self.results else 1.0

    @property
    def ok(self) -> bool:
        return not self.survivors and all(self.baseline_clean.values())

    def by_operator(self) -> dict[str, tuple[int, int]]:
        """operator -> (killed, total)."""
        table: dict[str, tuple[int, int]] = {}
        for r in self.results:
            killed, total = table.get(r.operator, (0, 0))
            table[r.operator] = (killed + int(r.detected), total + 1)
        return table

    def by_detector(self) -> dict[str, int]:
        table: dict[str, int] = {}
        for r in self.results:
            if r.detected:
                table[r.detector] = table.get(r.detector, 0) + 1
        return table

    def to_dict(self) -> dict:
        return {
            "cores": self.cores,
            "operators": self.operators,
            "mutants": len(self.results),
            "killed": self.killed,
            "survivors": [r.to_dict() for r in self.survivors],
            "score": round(self.score, 4),
            "baseline_clean": self.baseline_clean,
            "ok": self.ok,
            "by_operator": {
                op: {"killed": k, "total": t}
                for op, (k, t) in sorted(self.by_operator().items())
            },
            "by_detector": dict(sorted(self.by_detector().items())),
            "wall_seconds": round(self.wall_seconds, 3),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def format_text(self) -> str:
        lines = [
            f"mutation campaign: cores {', '.join(self.cores)}"
            f" — {len(self.results)} mutants, {self.killed} killed,"
            f" {len(self.survivors)} surviving"
            f" (score {self.score:.1%}, {self.wall_seconds:.1f}s)"
        ]
        for core, clean in sorted(self.baseline_clean.items()):
            if not clean:
                lines.append(f"  BASELINE NOT CLEAN: {core} — kills are void")
        for op, (killed, total) in sorted(self.by_operator().items()):
            mark = "ok" if killed == total else "SURVIVED"
            lines.append(f"  {op:<18} {killed}/{total} {mark}")
        detectors = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.by_detector().items())
        )
        if detectors:
            lines.append(f"  kills by detector — {detectors}")
        for r in self.survivors:
            lines.append(f"  SURVIVOR {r.mid}: {r.site}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DetectParams:
    """Formal-stage budgets for the detection ladder.

    ``lanes`` > 1 batches the trace stage: chunks of ``lanes - 1`` mutants
    run in lockstep with the golden design in one bit-parallel simulation
    (:mod:`repro.faults.lockstep`).  The verdicts and kill attribution
    are identical to the per-vector ladder — ``lanes`` only trades memory
    for wall time.
    """

    max_k: int = 2
    bmc_bound: int = 8
    max_conflicts: int | None = 50_000
    trace_cycles: int | None = None  # None: the core's default
    lanes: int = 1  # >1: bit-parallel lockstep trace stage


def detect_static(pipelined: PipelinedMachine) -> tuple[str, str]:
    """The simulation-free rungs of the ladder: lint, absint, taint."""
    lint = lint_pipeline(pipelined)
    if lint.has_errors:
        first = lint.errors[0]
        return "lint", f"{first.rule}: {first.message}"

    semantic = lint_semantic(pipelined.module)
    if semantic.has_errors:
        first = semantic.errors[0]
        return "absint", f"{first.rule}: {first.message}"
    violations = rom_template_violations(pipelined.machine, pipelined.module)
    if violations:
        return "absint", violations[0]

    taint = lint_taint(pipelined)
    if taint.has_errors:
        first = taint.errors[0]
        return "taint", f"{first.rule}: {first.message}"
    return "", ""


def detect_formal(
    pipelined: PipelinedMachine,
    obligations,
    params: DetectParams = DetectParams(),
) -> tuple[str, str]:
    """The SAT rung of the ladder over an already-generated obligation
    set (trace obligations must have been discharged beforehand)."""
    resolve_properties(pipelined, obligations)
    system = TransitionSystem.from_module(pipelined.module)
    for obligation in obligations.invariants():
        record = discharge_invariant(
            system,
            obligation,
            max_k=params.max_k,
            bmc_bound=params.bmc_bound,
            max_conflicts=params.max_conflicts,
        )
        if record.status is Status.FAILED:
            return "formal", f"{obligation.oid}: {record.method}"
    for obligation in obligations.equivalences():
        record = discharge_equivalence(obligation)
        if record.status is Status.FAILED:
            return "formal", f"{obligation.oid}: {record.detail}"
    return "", ""


def detect(
    pipelined: PipelinedMachine,
    trace_cycles: int,
    params: DetectParams = DetectParams(),
) -> tuple[str, str]:
    """Run the detection ladder; return ``(detector, detail)`` —
    ``("", "")`` when every checker accepts the design."""
    detector, detail = detect_static(pipelined)
    if detector:
        return detector, detail

    obligations = generate_obligations(pipelined)
    trace_obs = obligations.trace_checks()
    trace = build_trace(pipelined, trace_cycles) if trace_obs else None
    for obligation in trace_obs:
        record = discharge_trace(
            pipelined, obligation, trace=trace, trace_cycles=trace_cycles
        )
        if record.status is Status.FAILED:
            return "trace", f"{obligation.oid}: {record.detail}"

    return detect_formal(pipelined, obligations, params)


def run_mutant(
    mutant: Mutant, trace_cycles: int, params: DetectParams = DetectParams()
) -> MutantResult:
    """Build one mutant and push it down the detection ladder."""
    start = time.perf_counter()
    try:
        mutated = mutant.build()
    except Exception as error:  # structural rejection is a legitimate kill
        return MutantResult(
            mid=mutant.mid,
            core=mutant.core,
            operator=mutant.operator,
            site=mutant.site,
            detected=True,
            detector="build",
            detail=f"{type(error).__name__}: {error}",
            seconds=time.perf_counter() - start,
        )
    detector, detail = detect(mutated, trace_cycles, params)
    return MutantResult(
        mid=mutant.mid,
        core=mutant.core,
        operator=mutant.operator,
        site=mutant.site,
        detected=bool(detector),
        detector=detector,
        detail=detail,
        seconds=time.perf_counter() - start,
    )


def run_mutants_lockstep(
    baseline: PipelinedMachine,
    mutants: list[Mutant],
    trace_cycles: int,
    params: DetectParams,
) -> list[MutantResult]:
    """The staged lockstep campaign over one core's mutants: build and
    static rungs per mutant as usual, then the trace rung batched in
    chunks of ``params.lanes - 1`` mutants against the golden design,
    then the formal rung per trace-clean mutant.

    The staging reorders *work*, not verdicts: every mutant still walks
    build → lint → absint → taint → trace → formal and stops at the
    first kill,
    so results (detector and detail included) match :func:`run_mutant`.
    """
    from .lockstep import LockstepTraceRung

    results: dict[int, MutantResult] = {}
    candidates: list[tuple[int, Mutant, PipelinedMachine, float]] = []
    for index, mutant in enumerate(mutants):
        start = time.perf_counter()
        try:
            mutated = mutant.build()
        except Exception as error:
            results[index] = MutantResult(
                mid=mutant.mid,
                core=mutant.core,
                operator=mutant.operator,
                site=mutant.site,
                detected=True,
                detector="build",
                detail=f"{type(error).__name__}: {error}",
                seconds=time.perf_counter() - start,
            )
            continue
        detector, detail = detect_static(mutated)
        elapsed = time.perf_counter() - start
        if detector:
            results[index] = MutantResult(
                mid=mutant.mid,
                core=mutant.core,
                operator=mutant.operator,
                site=mutant.site,
                detected=True,
                detector=detector,
                detail=detail,
                seconds=elapsed,
            )
            continue
        candidates.append((index, mutant, mutated, elapsed))

    rung = LockstepTraceRung(baseline, trace_cycles, params.lanes)
    verdicts = rung.check([mutated for _, _, mutated, _ in candidates])
    for (index, mutant, mutated, static_seconds), verdict in zip(
        candidates, verdicts
    ):
        detector, detail, obligations, trace_seconds = verdict
        seconds = static_seconds + trace_seconds
        if not detector:
            start = time.perf_counter()
            detector, detail = detect_formal(mutated, obligations, params)
            seconds += time.perf_counter() - start
        results[index] = MutantResult(
            mid=mutant.mid,
            core=mutant.core,
            operator=mutant.operator,
            site=mutant.site,
            detected=bool(detector),
            detector=detector,
            detail=detail,
            seconds=seconds,
        )
    return [results[index] for index in range(len(mutants))]


def run_campaign(
    cores: list[str] | None = None,
    operators: list[str] | None = None,
    max_per_operator: int | None = None,
    params: DetectParams = DetectParams(),
    progress: Progress | None = None,
) -> CampaignReport:
    """Run the full campaign over the named cores (default: every
    non-slow core)."""
    if cores is None:
        cores = [name for name, spec in CORES.items() if not spec.slow]
    selected = list(operators) if operators is not None else list(OPERATORS)
    report = CampaignReport(cores=list(cores), operators=selected)
    start = time.perf_counter()

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    for name in cores:
        spec: CoreSpec = CORES[name]
        cycles = (
            params.trace_cycles
            if params.trace_cycles is not None
            else spec.trace_cycles
        )
        from ..core.transform import transform

        baseline = transform(spec.build_machine())
        detector, detail = detect(baseline, cycles, params)
        clean = detector == ""
        report.baseline_clean[name] = clean
        note(
            f"[{name}] baseline {'clean' if clean else f'DIRTY ({detector}: {detail})'}"
        )
        if not clean:
            continue  # kills against a noisy checker prove nothing

        mutants = generate_mutants(spec, selected, max_per_operator)
        note(f"[{name}] {len(mutants)} mutants across {len(selected)} operators")
        def finish(result: MutantResult) -> None:
            report.results.append(result)
            verdict = (
                f"killed by {result.detector}" if result.detected else "SURVIVED"
            )
            note(f"[{name}] {result.mid}: {verdict} ({result.seconds:.2f}s)")

        if params.lanes > 1:
            for result in run_mutants_lockstep(baseline, mutants, cycles, params):
                finish(result)
        else:
            for mutant in mutants:
                finish(run_mutant(mutant, cycles, params))

    report.wall_seconds = time.perf_counter() - start
    return report
