"""Lockstep batched trace rung: golden + N mutants in one bit-parallel run.

The trace stage dominates campaign wall time: every mutant re-simulates
the pipelined module *and* the sequential reference for the full
workload.  This module replaces that with one
:class:`repro.hdl.batchsim.BatchSimulator` run per chunk of mutants:

1. :func:`combine_modules` folds the golden module and each mutant module
   into one netlist with a ``__mutsel__`` input — every expression slot
   where a mutant differs from the golden design (``is``-compared over
   the hash-consed DAG) is wrapped in a mux selecting that mutant's
   expression on its lane index.  Lane 0 simulates the golden design,
   lane ``k`` mutant ``k`` — bit-identically to simulating each module
   alone, because the select input is constant per lane.
2. :class:`LockstepTraceRung` drives the combined module for the core's
   workload, snapshots the packed visible state every cycle, then
   discharges each mutant's trace obligations from its *lane view* of
   the one run — reusing :func:`repro.proofs.discharge.discharge_trace`
   with precomputed artifacts so verdicts, kill attribution and detail
   strings match the per-vector ladder exactly.

The sequential reference is mutant-independent (mutation operators
rewrite the pipelined elaboration only), so its state snapshots
(:class:`repro.core.SpecStateCache`) and commit streams
(:func:`repro.core.seq_commit_side`) are computed once per core and
shared by every mutant.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..core.consistency import SpecState, SpecStateCache, seq_commit_side
from ..core.transform import PipelinedMachine
from ..hdl import expr as E
from ..hdl.batchsim import BatchSimulator
from ..hdl.netlist import Module, ModuleState
from ..proofs.discharge import Status, discharge_trace
from ..proofs.obligations import ObligationSet, generate_obligations

MUTSEL = "__mutsel__"


class LockstepIncompatible(ValueError):
    """A mutant module cannot be folded into a lockstep combination
    (diverging register inits or structural shape); the campaign falls
    back to the per-vector trace rung for it."""


def _check_compatible(golden: Module, variant: Module, shape: Module) -> None:
    """``shape`` fixes the element sets every variant must share; golden
    may be a *superset* — proof instrumentation (the ``isched.*`` Lemma 1
    counters) adds auxiliary registers and probes to a module in place,
    and those golden-only extras are simply left out of the combination
    (per-vector trace checking sees pre-instrumentation mutants too)."""
    if set(variant.inputs) != set(golden.inputs):
        raise LockstepIncompatible("input ports differ")
    if set(variant.registers) != set(shape.registers):
        raise LockstepIncompatible("register sets differ")
    if set(variant.memories) != set(shape.memories):
        raise LockstepIncompatible("memory sets differ")
    if set(variant.probes) != set(shape.probes):
        raise LockstepIncompatible("probe sets differ")
    for name, other in variant.registers.items():
        reg = golden.registers.get(name)
        if reg is None or other.width != reg.width or other.init != reg.init:
            raise LockstepIncompatible(f"register {name!r} shape differs")
    for name, other in variant.memories.items():
        memory = golden.memories.get(name)
        if (
            memory is None
            or other.addr_width != memory.addr_width
            or other.data_width != memory.data_width
            or len(other.write_ports) != len(memory.write_ports)
        ):
            raise LockstepIncompatible(f"memory {name!r} shape differs")
    if not set(variant.probes) <= set(golden.probes):
        raise LockstepIncompatible("variant probes missing from golden")


def combine_modules(
    golden: Module, variants: Sequence[Module]
) -> tuple[Module, list[ModuleState] | None]:
    """Fold ``golden`` and each variant into one module selected by the
    ``__mutsel__`` input: value 0 behaves as ``golden``, value ``k+1`` as
    ``variants[k]``.

    Returns the combined module plus per-lane initial states — ``None``
    when every variant shares the golden initial image (the common case;
    only ROM-corrupting mutants diverge).
    """
    if not variants:
        raise LockstepIncompatible("need at least one variant")
    if MUTSEL in golden.inputs:
        raise LockstepIncompatible(f"golden module already has {MUTSEL!r}")
    shape = variants[0]
    for variant in variants:
        _check_compatible(golden, variant, shape)
    lanes = len(variants) + 1
    width = max(1, (lanes - 1).bit_length())
    combined = Module(f"{golden.name}+lockstep{lanes}")
    sel = combined.add_input(MUTSEL, width)

    def select(golden_expr: E.Expr, pick) -> E.Expr:
        result = golden_expr
        for k, variant in enumerate(variants):
            candidate = pick(variant)
            if candidate is not golden_expr:
                result = E.mux(
                    E.eq(sel, E.const(width, k + 1)), candidate, result
                )
        return result

    for name, w in golden.inputs.items():
        combined.add_input(name, w)
    for name in shape.registers:
        reg = golden.registers[name]
        combined.add_register(name, reg.width, init=reg.init)
    for name in shape.registers:
        reg = golden.registers[name]
        combined.drive_register(
            name,
            select(reg.next, lambda m, n=name: m.registers[n].next),
            enable=select(reg.enable, lambda m, n=name: m.registers[n].enable),
        )
    init_diverges = False
    for name in shape.memories:
        memory = golden.memories[name]
        clone = combined.add_memory(
            name, memory.addr_width, memory.data_width, init=dict(memory.init)
        )
        for variant in variants:
            if variant.memories[name].init != memory.init:
                init_diverges = True
        for index, port in enumerate(memory.write_ports):
            clone.add_write_port(
                select(
                    port.enable,
                    lambda m, n=name, i=index: m.memories[n].write_ports[i].enable,
                ),
                select(
                    port.addr,
                    lambda m, n=name, i=index: m.memories[n].write_ports[i].addr,
                ),
                select(
                    port.data,
                    lambda m, n=name, i=index: m.memories[n].write_ports[i].data,
                ),
            )
    for name in shape.probes:
        combined.add_probe(
            name, select(golden.probes[name], lambda m, n=name: m.probes[n])
        )
    try:
        combined.validate()
    except Exception as error:
        # a golden default arm may reference a golden-only element that was
        # left out of the combination — unlikely (instrumentation never
        # feeds shared logic), but fall back per-vector rather than crash
        raise LockstepIncompatible(f"combined module invalid: {error}")

    lane_states: list[ModuleState] | None = None
    if init_diverges:
        lane_states = [golden.initial_state()]
        lane_states += [variant.initial_state() for variant in variants]
    return combined, lane_states


class LockstepTraceRung:
    """Discharge many mutants' trace obligations from batched lockstep
    runs, with one shared sequential reference per core.

    ``check`` consumes built mutants and returns, for each, the tuple
    ``(detector, detail, obligations, seconds)`` — ``detector`` is
    ``"trace"`` with the per-vector ladder's exact detail string on a
    kill, ``""`` when every trace obligation passes.  The mutant's
    :class:`ObligationSet` is returned so the campaign's formal stage
    reuses it, mirroring the single-``detect`` flow.
    """

    def __init__(
        self,
        baseline: PipelinedMachine,
        trace_cycles: int,
        lanes: int,
    ) -> None:
        if lanes < 2:
            raise ValueError("lockstep needs at least 2 lanes (golden + 1)")
        self.baseline = baseline
        self.trace_cycles = trace_cycles
        self.lanes = lanes
        machine = baseline.machine
        # consistency's sequential side: only legal without speculation
        self._spec_cache = (
            SpecStateCache(machine) if not machine.speculations else None
        )
        self._seq_side: tuple[dict[str, list[tuple]], int] | None = None

    def _shared_seq_side(self) -> tuple[dict[str, list[tuple]], int]:
        if self._seq_side is None:
            machine = self.baseline.machine
            repaired = {
                target.split(".")[0]
                for spec in machine.speculations
                for target in spec.repairs
            }
            self._seq_side = seq_commit_side(
                machine,
                self.trace_cycles * machine.n_stages,
                exclude=repaired,
            )
        return self._seq_side

    def check(
        self, mutants: Sequence[PipelinedMachine]
    ) -> list[tuple[str, str, ObligationSet, float]]:
        results: list[tuple[str, str, ObligationSet, float]] = []
        for chunk in _chunked(mutants, self.lanes - 1):
            results.extend(self._check_chunk(chunk))
        return results

    # -- one chunk -----------------------------------------------------------

    def _check_chunk(
        self, chunk: Sequence[PipelinedMachine]
    ) -> list[tuple[str, str, ObligationSet, float]]:
        golden = self.baseline
        try:
            combined, lane_states = combine_modules(
                golden.module, [mutant.module for mutant in chunk]
            )
        except LockstepIncompatible:
            return [self._check_per_vector(mutant) for mutant in chunk]

        start = time.perf_counter()
        machine = golden.machine
        lanes = len(chunk) + 1
        batch = BatchSimulator(combined, lanes=lanes, lane_states=lane_states)
        sel = list(range(lanes))
        visible_regs = [
            (reg.name, reg.instance_name(reg.last))
            for reg in machine.visible_registers()
        ]
        visible_rfs = [rf.name for rf in machine.visible_regfiles()]
        record_states = self._spec_cache is not None

        def snapshot() -> tuple[dict, dict]:
            regs = {
                name: batch.reg_packed(instance)
                for name, instance in visible_regs
            }
            mems = {
                name: (batch.mem_packed(name), batch.written_packed(name))
                for name in visible_rfs
            }
            return regs, mems

        snapshots = [snapshot()] if record_states else []
        for _ in range(self.trace_cycles):
            batch.step({MUTSEL: sel})
            if record_states:
                snapshots.append(snapshot())
        sim_share = (time.perf_counter() - start) / len(chunk)

        results = []
        for k, mutant in enumerate(chunk):
            start = time.perf_counter()
            verdict = self._check_lane(mutant, batch, k + 1, snapshots)
            seconds = sim_share + time.perf_counter() - start
            results.append((*verdict, seconds))
        return results

    def _check_lane(
        self,
        mutant: PipelinedMachine,
        batch: BatchSimulator,
        lane: int,
        snapshots: list[tuple[dict, dict]],
    ) -> tuple[str, str, ObligationSet]:
        obligations = generate_obligations(mutant)
        lane_trace = batch.trace.lane(lane)
        impl_states: list[SpecState] | None = None
        for obligation in obligations.trace_checks():
            kwargs: dict = {}
            if obligation.checker == "consistency" and snapshots:
                if impl_states is None:
                    impl_states = _lane_impl_states(batch, lane, snapshots)
                kwargs = {
                    "impl_states": impl_states,
                    "spec_cache": self._spec_cache,
                }
            elif obligation.checker == "commit_streams":
                kwargs = {"seq_side": self._shared_seq_side()}
            record = discharge_trace(
                mutant,
                obligation,
                trace=lane_trace,
                trace_cycles=self.trace_cycles,
                **kwargs,
            )
            if record.status is Status.FAILED:
                return "trace", f"{obligation.oid}: {record.detail}", obligations
        return "", "", obligations

    def _check_per_vector(
        self, mutant: PipelinedMachine
    ) -> tuple[str, str, ObligationSet, float]:
        """Fallback for mutants that cannot join a lockstep combination:
        the ordinary single-lane trace rung."""
        from ..proofs.discharge import build_trace

        start = time.perf_counter()
        obligations = generate_obligations(mutant)
        trace_obs = obligations.trace_checks()
        trace = build_trace(mutant, self.trace_cycles) if trace_obs else None
        for obligation in trace_obs:
            record = discharge_trace(
                mutant, obligation, trace=trace, trace_cycles=self.trace_cycles
            )
            if record.status is Status.FAILED:
                return (
                    "trace",
                    f"{obligation.oid}: {record.detail}",
                    obligations,
                    time.perf_counter() - start,
                )
        return "", "", obligations, time.perf_counter() - start


def _lane_impl_states(
    batch: BatchSimulator, lane: int, snapshots: list[tuple[dict, dict]]
) -> list[SpecState]:
    """One lane's per-cycle visible-state snapshots, with exactly the
    memory key sets a per-vector simulation of that mutant would hold
    (its initial image plus its own writes), so consistency verdicts and
    violation strings match the per-vector checker verbatim."""
    shift = lane * batch.stride
    states = []
    for regs, mems in snapshots:
        registers = {
            name: batch.slot(value, lane) for name, value in regs.items()
        }
        memories: dict[str, dict[int, int]] = {}
        for name, (words, written) in mems.items():
            keys = set(batch.init_keys(name, lane))
            for addr, lanes_mask in written.items():
                if (lanes_mask >> shift) & 1:
                    keys.add(addr)
            memories[name] = {
                addr: batch.slot(words.get(addr, 0), lane)
                for addr in sorted(keys)
            }
        states.append(SpecState(registers=registers, memories=memories))
    return states


def _chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(items), size):
        yield items[start : start + size]
