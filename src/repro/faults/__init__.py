"""Fault injection for verifier validation (mutation testing the checker).

The proof/lint/trace stack is this project's trusted computing base:
:mod:`repro.faults` earns that trust by injecting the recurring pipeline
defect classes (dropped forwards, off-by-one stalls, wrong enables,
stuck nets, swapped mux arms, mis-staged rollback) into the generated
hardware and demanding every one is detected.  See :mod:`.operators`
for the fault shapes, :mod:`.catalog` for site enumeration over the
built-in cores and :mod:`.campaign` for the staged detection ladder and
coverage report.
"""

from .campaign import (
    CampaignReport,
    DetectParams,
    MutantResult,
    detect,
    detect_formal,
    detect_static,
    run_campaign,
    run_mutant,
    run_mutants_lockstep,
)
from .catalog import CORES, OPERATORS, CoreSpec, Mutant, generate_mutants
from .lockstep import LockstepTraceRung, combine_modules

__all__ = [
    "CORES",
    "CampaignReport",
    "CoreSpec",
    "DetectParams",
    "LockstepTraceRung",
    "Mutant",
    "MutantResult",
    "OPERATORS",
    "combine_modules",
    "detect",
    "detect_formal",
    "detect_static",
    "generate_mutants",
    "run_campaign",
    "run_mutant",
    "run_mutants_lockstep",
]
