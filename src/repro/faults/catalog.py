"""The mutant catalog: cores under test and systematic fault enumeration.

Each *core* is a named factory for a prepared machine plus a workload that
exercises its hazards (the toy machine's load-use chain, the DLX
fibonacci loop).  :func:`generate_mutants` enumerates every applicable
fault site of every operator over a core:

====================  =========================================================
operator              fault shape
====================  =========================================================
``stuck-data``        register-file write data stuck at all-0 / all-1
``stuck-addr``        register-file write address stuck at 0
``invert-we``         register-file write enable inverted
``always-we``         register-file write enable forced on
``swap-mux``          the write-back value mux with its arms swapped
``invert-enable``     a pipeline register's clock enable inverted
``stuck-reg``         a designer forwarding register's next value stuck at 0
``stuck-full``        a full bit's next value stuck at 0 / 1
``drop-hit``          one forwarding-hit comparator forced to never match
``swap-hit-values``   the values forwarded by two adjacent hit stages swapped
``weaken-dhaz``       a stage's data-hazard (interlock) signal forced to 0
``weaken-stall``      a stage's stall signal forced to 0
``drop-rollback``     a stage's squash signal forced to 0 (speculative cores)
``shift-rollback``    the squash window shifted one stage (off-by-one tag)
``drop-forwarding``   a synthesized network dropped from coverage records
``early-valid``       a forwarding valid bit forced on one stage too early
``freeze-reg``        a pipeline register's next value tied to its own output
``unalign-rom``       an instruction-ROM word corrupted against its template
``drop-commit-guard`` a write-port enable's occupancy (full-bit) guard forced to 1
``rollback-tag-bypass`` a squash-window full bit keeps its tag across rollback
====================  =========================================================

Every mutant must be caught by the verifier stack (lint, the absint
semantic checks, trace checking, or proof discharge) — a survivor is a
soundness gap in the checker, not a property of the mutant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..core.transform import PipelinedMachine, transform
from ..hdl import expr as E
from ..machine.prepared import PreparedMachine
from . import operators as ops


@dataclass
class Mutant:
    """One injectable fault: an operator applied at one site of one core."""

    mid: str  # unique id, e.g. "toy/invert-we/RF.w0"
    core: str
    operator: str
    site: str
    build: Callable[[], PipelinedMachine] = field(repr=False)

    def to_dict(self) -> dict[str, str]:
        return {
            "mid": self.mid,
            "core": self.core,
            "operator": self.operator,
            "site": self.site,
        }


@dataclass(frozen=True)
class CoreSpec:
    """A named machine + workload the campaign runs against."""

    name: str
    build_machine: Callable[[], PreparedMachine] = field(repr=False)
    trace_cycles: int = 150
    slow: bool = False  # excluded from the default CLI core set


def _toy_machine(word: int | None = None) -> PreparedMachine:
    from ..machine import toy

    # exercises forwarding (back-to-back adds), the two-producer C chain
    # (LI in RD, ADD in EX) and the load-use interlock
    program = [
        toy.li(1, 5),
        toy.li(2, 7),
        toy.add(3, 1, 2),
        toy.add(0, 3, 3),
        toy.ld(1, 3),
        toy.add(2, 1, 1),
    ]
    return toy.build_toy_machine(program, {12: 99}, word=word or toy.WORD)


def _dlx_small_machine(word: int | None = None) -> PreparedMachine:
    from ..dlx import DlxConfig, build_dlx_machine, isa
    from ..dlx.programs import hazard_torture

    workload = hazard_torture()
    return build_dlx_machine(
        workload.program,
        data=workload.data,
        config=DlxConfig(
            imem_addr_width=6, dmem_addr_width=4, word=word or isa.WORD
        ),
    )


def _dlx_machine(word: int | None = None) -> PreparedMachine:
    from ..dlx import DlxConfig, build_dlx_machine, isa
    from ..dlx.programs import hazard_torture

    workload = hazard_torture(iterations=4)
    return build_dlx_machine(
        workload.program,
        data=workload.data,
        config=DlxConfig(word=word or isa.WORD),
    )


def _dlx_spec_machine(word: int | None = None) -> PreparedMachine:
    from ..dlx import isa
    from ..dlx.programs import hazard_torture
    from ..dlx.speculative import DlxSpecConfig, build_dlx_spec_machine

    workload = hazard_torture(delay_slots=False)
    return build_dlx_spec_machine(
        workload.program,
        data=workload.data,
        config=DlxSpecConfig(word=word or isa.WORD),
    )


CORES: dict[str, CoreSpec] = {
    "toy": CoreSpec("toy", _toy_machine, trace_cycles=60),
    "dlx-small": CoreSpec("dlx-small", _dlx_small_machine, trace_cycles=150),
    "dlx": CoreSpec("dlx", _dlx_machine, trace_cycles=300, slow=True),
    "dlx-spec": CoreSpec(
        "dlx-spec", _dlx_spec_machine, trace_cycles=150, slow=True
    ),
}


def _nonconst(expression: E.Expr) -> bool:
    return not isinstance(expression, E.Const)


# ---------------------------------------------------------------------------
# netlist-level enumerators: (core name, baseline pipeline) -> mutants
# ---------------------------------------------------------------------------


def _writable_memories(pipelined: PipelinedMachine) -> list[str]:
    return [
        name
        for name, memory in pipelined.module.memories.items()
        if memory.write_ports
    ]


def _enum_stuck_data(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index, port in enumerate(memory.write_ports):
            for value, tag in ((0, "0"), ((1 << memory.data_width) - 1, "1")):
                yield Mutant(
                    mid=f"{core}/stuck-data-{tag}/{name}.w{index}",
                    core=core,
                    operator="stuck-data",
                    site=f"{name} write port {index} data := {tag * 2}...",
                    build=lambda p=index, n=name, v=value, w=memory.data_width: (
                        ops.with_write_port(
                            pipelined, n, p, data=E.const(w, v)
                        )
                    ),
                )


def _enum_stuck_addr(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index in range(len(memory.write_ports)):
            yield Mutant(
                mid=f"{core}/stuck-addr/{name}.w{index}",
                core=core,
                operator="stuck-addr",
                site=f"{name} write port {index} addr := 0",
                build=lambda p=index, n=name, w=memory.addr_width: (
                    ops.with_write_port(pipelined, n, p, addr=E.const(w, 0))
                ),
            )


def _enum_invert_we(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index, port in enumerate(memory.write_ports):
            yield Mutant(
                mid=f"{core}/invert-we/{name}.w{index}",
                core=core,
                operator="invert-we",
                site=f"{name} write port {index} enable inverted",
                build=lambda p=index, n=name, e=port.enable: (
                    ops.with_write_port(pipelined, n, p, enable=E.bnot(e))
                ),
            )


def _enum_always_we(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index, port in enumerate(memory.write_ports):
            if isinstance(port.enable, E.Const) and port.enable.value == 1:
                continue
            yield Mutant(
                mid=f"{core}/always-we/{name}.w{index}",
                core=core,
                operator="always-we",
                site=f"{name} write port {index} enable := 1",
                build=lambda p=index, n=name: (
                    ops.with_write_port(pipelined, n, p, enable=E.const(1, 1))
                ),
            )


def _enum_swap_mux(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index, port in enumerate(memory.write_ports):
            mux = ops.first_mux(port.data)
            if mux is None or mux.then is mux.els:
                continue
            yield Mutant(
                mid=f"{core}/swap-mux/{name}.w{index}",
                core=core,
                operator="swap-mux",
                site=f"{name} write port {index} data mux arms swapped",
                build=lambda m=mux: ops.swap_mux_arms(pipelined, m),
            )


def _observable_registers(pipelined: PipelinedMachine) -> set[str]:
    """Registers in the transitive fan-in of an architectural sink
    (memory write port or visible register).  A register outside this
    cone — e.g. the interrupt PC chain with interrupts configured off —
    cannot affect any observable behaviour, so mutating it yields an
    equivalent mutant the catalog must exclude."""
    module = pipelined.module
    observable: set[str] = set()
    frontier: list[E.Expr] = []
    for memory in module.memories.values():
        for port in memory.write_ports:
            frontier += [port.enable, port.addr, port.data]
    for reg in pipelined.machine.registers.values():
        if reg.visible:
            name = reg.instance_name(reg.last)
            if name in module.registers:
                observable.add(name)
                frontier += [
                    module.registers[name].next,
                    module.registers[name].enable,
                ]
    while frontier:
        reads = {
            node.name
            for node in E.walk(frontier)
            if isinstance(node, E.RegRead)
        }
        frontier = []
        for name in reads - observable:
            observable.add(name)
            reg = module.registers.get(name)
            if reg is not None:
                frontier += [reg.next, reg.enable]
    return observable


def _enum_invert_enable(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    instance_names = set(pipelined.machine.instance_names())
    observable = _observable_registers(pipelined)
    for name, reg in pipelined.module.registers.items():
        if name not in instance_names or name not in observable:
            continue
        yield Mutant(
            mid=f"{core}/invert-enable/{name}",
            core=core,
            operator="invert-enable",
            site=f"register {name} clock enable inverted",
            build=lambda n=name, e=reg.enable: (
                ops.with_register(pipelined, n, enable=E.bnot(e))
            ),
        )


def _enum_stuck_reg(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    machine = pipelined.machine
    for annotation in machine.forwarding:
        reg = machine.registers.get(annotation.reg)
        if reg is None:
            continue
        instance = reg.instance_name(annotation.stage + 1)
        if instance not in pipelined.module.registers:
            continue
        yield Mutant(
            mid=f"{core}/stuck-reg/{instance}",
            core=core,
            operator="stuck-reg",
            site=f"forwarding register {instance} next := 0",
            build=lambda n=instance, w=reg.width: (
                ops.with_register(pipelined, n, next=E.const(w, 0))
            ),
        )


def _enum_stuck_full(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    from ..core.stall_engine import full_bit_name

    for stage in range(1, pipelined.n_stages):
        name = full_bit_name(stage)
        if name not in pipelined.module.registers:
            continue
        yield Mutant(
            mid=f"{core}/stuck-full-0/{name}",
            core=core,
            operator="stuck-full",
            site=f"{name} next := 0 (stage {stage} never full)",
            build=lambda n=name: ops.with_register(
                pipelined, n, next=E.const(1, 0)
            ),
        )
        # a stuck-at-1 full bit is only a reachable difference for stages a
        # bubble can actually enter (stage 1 refills every cycle from the
        # always-full fetch stage, so forcing it is a no-op)
        if stage >= 2:
            yield Mutant(
                mid=f"{core}/stuck-full-1/{name}",
                core=core,
                operator="stuck-full",
                site=f"{name} next := 1 (bubbles in stage {stage} claim full)",
                build=lambda n=name: ops.with_register(
                    pipelined, n, next=E.const(1, 1)
                ),
            )


def _enum_drop_hit(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for index, network in enumerate(pipelined.networks):
        for j in network.hit_stages:
            hit = network.hits.get(j)
            if hit is None or not _nonconst(hit):
                continue
            yield Mutant(
                mid=f"{core}/drop-hit/{network.regfile}.{network.stage}.{index}.{j}",
                core=core,
                operator="drop-hit",
                site=(
                    f"{network.regfile} read in stage {network.stage}:"
                    f" hit against stage {j} never matches"
                ),
                build=lambda h=hit: ops.force_net(pipelined, h, 0),
            )


def _enum_swap_hit_values(
    core: str, pipelined: PipelinedMachine
) -> Iterator[Mutant]:
    for index, network in enumerate(pipelined.networks):
        stages = [
            j
            for j in network.hit_stages
            if network.values.get(j) is not None
        ]
        for a, b in zip(stages, stages[1:]):
            va, vb = network.values[a], network.values[b]
            if va is vb:
                continue
            yield Mutant(
                mid=(
                    f"{core}/swap-hit-values/"
                    f"{network.regfile}.{network.stage}.{index}.{a}-{b}"
                ),
                core=core,
                operator="swap-hit-values",
                site=(
                    f"{network.regfile} read in stage {network.stage}:"
                    f" values forwarded from stages {a} and {b} swapped"
                ),
                build=lambda x=va, y=vb: ops.rewrite_module(
                    pipelined, [(x, y), (y, x)]
                ),
            )


def _enum_weaken_dhaz(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for stage, dhaz in enumerate(pipelined.engine.dhaz):
        if not _nonconst(dhaz):
            continue
        yield Mutant(
            mid=f"{core}/weaken-dhaz/{stage}",
            core=core,
            operator="weaken-dhaz",
            site=f"dhaz_{stage} := 0 (interlock removed)",
            build=lambda d=dhaz: ops.force_net(pipelined, d, 0),
        )


def _enum_weaken_stall(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for stage, stall in enumerate(pipelined.engine.stall):
        if not _nonconst(stall):
            continue
        yield Mutant(
            mid=f"{core}/weaken-stall/{stage}",
            core=core,
            operator="weaken-stall",
            site=f"stall_{stage} := 0 (stage never holds)",
            build=lambda s=stall: ops.force_net(pipelined, s, 0),
        )


def _enum_drop_rollback(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    for stage, prime in enumerate(pipelined.engine.rollback_prime):
        if not _nonconst(prime):
            continue
        yield Mutant(
            mid=f"{core}/drop-rollback/{stage}",
            core=core,
            operator="drop-rollback",
            site=f"rollback'_{stage} := 0 (stage {stage} never squashes)",
            build=lambda p=prime: ops.force_net(pipelined, p, 0),
        )


def _enum_shift_rollback(
    core: str, pipelined: PipelinedMachine
) -> Iterator[Mutant]:
    primes = pipelined.engine.rollback_prime
    for stage in range(len(primes) - 1):
        a, b = primes[stage], primes[stage + 1]
        if not _nonconst(a) or a is b:
            continue
        yield Mutant(
            mid=f"{core}/shift-rollback/{stage}",
            core=core,
            operator="shift-rollback",
            site=(
                f"rollback'_{stage} := rollback'_{stage + 1}"
                " (squash window off by one)"
            ),
            build=lambda x=a, y=b: ops.rewrite_module(pipelined, [(x, y)]),
        )


def _enum_drop_forwarding(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    # drops the *record* of a synthesized network while keeping the
    # hardware — the transformation claiming coverage it does not track.
    # the static hazard audit must notice the uncovered read site.
    import dataclasses

    for index, network in enumerate(pipelined.networks):
        yield Mutant(
            mid=f"{core}/drop-forwarding/{network.regfile}.{network.stage}.{index}",
            core=core,
            operator="drop-forwarding",
            site=(
                f"network for {network.regfile} read in stage"
                f" {network.stage} dropped from coverage records"
            ),
            build=lambda i=index: dataclasses.replace(
                pipelined,
                networks=pipelined.networks[:i] + pipelined.networks[i + 1 :],
            ),
        )


def _enum_early_valid(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    # the off-by-one *mis-staged forward*: a valid bit claiming the
    # forwarded value final a stage before its producer writes it.  (The
    # dual defect — moving a designer annotation a stage *earlier* and
    # re-transforming — is masked by the precise per-stage write enables
    # the valid chain consults, so it is excluded as an equivalent
    # mutant; forcing the valid pipeline itself is the real fault.)
    from ..core.forwarding import valid_bit_name

    valid_names = {
        valid_bit_name(regfile, stage)
        for regfile in {network.regfile for network in pipelined.networks}
        for stage in range(pipelined.n_stages + 1)
    }
    for name in sorted(valid_names & set(pipelined.module.registers)):
        yield Mutant(
            mid=f"{core}/early-valid/{name}",
            core=core,
            operator="early-valid",
            site=f"valid bit {name} next := 1 (value claimed final early)",
            build=lambda n=name: ops.with_register(
                pipelined, n, next=E.const(1, 1)
            ),
        )


def _enum_freeze_reg(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    # the register reloads its own content every cycle: structurally it
    # still has update logic (one-shot lint deliberately tolerates hold
    # registers), but no reachable state ever changes — only the
    # sequential absint fixpoint proves the update dead, so this operator
    # exercises the campaign's absint rung.
    instance_names = set(pipelined.machine.instance_names())
    observable = _observable_registers(pipelined)
    for name, reg in pipelined.module.registers.items():
        if name not in instance_names or name not in observable:
            continue
        if isinstance(reg.next, E.Const):
            continue  # stuck-reg territory, not a silent freeze
        if isinstance(reg.next, E.RegRead) and reg.next.name == name:
            continue  # already a hold register: the mutant is equivalent
        yield Mutant(
            mid=f"{core}/freeze-reg/{name}",
            core=core,
            operator="freeze-reg",
            site=f"register {name} next := its own value (update frozen)",
            build=lambda n=name, w=reg.width: ops.with_register(
                pipelined, n, next=E.reg_read(n, w)
            ),
        )


def _enum_unalign_rom(core: str, pipelined: PipelinedMachine) -> Iterator[Mutant]:
    # flip the low bit of an instruction-ROM word a declared invariant
    # template constrains (a control-transfer immediate losing its word
    # alignment): the corrupted *image* violates the template even when
    # the word is never fetched inside the trace or BMC horizon, so the
    # absint image check is the detector that catches it cheaply.
    machine = pipelined.machine
    module = pipelined.module
    seen: set[tuple[str, int]] = set()
    for template in getattr(machine, "invariant_templates", ()):
        reg = machine.registers[template.register]

        def _holds(word: int) -> bool | None:
            prop = template.prop(E.const(reg.width, word))
            return prop.value == 1 if isinstance(prop, E.Const) else None

        for mem_name, memory in module.memories.items():
            if memory.write_ports or memory.data_width != reg.width:
                continue
            for addr in sorted(memory.init):
                word = memory.init[addr]
                if (mem_name, addr) in seen:
                    continue
                if _holds(word) is not True or _holds(word ^ 1) is not False:
                    continue
                seen.add((mem_name, addr))
                yield Mutant(
                    mid=f"{core}/unalign-rom/{mem_name}.{addr:#x}",
                    core=core,
                    operator="unalign-rom",
                    site=(
                        f"{mem_name}[{addr:#x}] low bit flipped"
                        f" (image violates tmpl.{template.name})"
                    ),
                    build=lambda m=mem_name, a=addr, w=word: (
                        ops.with_rom_word(pipelined, m, a, w ^ 1)
                    ),
                )


def _enum_drop_commit_guard(
    core: str, pipelined: PipelinedMachine
) -> Iterator[Mutant]:
    # the seeded speculation leak: the write-port enable keeps its piped
    # write-enable logic but loses the occupancy guard, so bubbles and
    # squashed slots retire whatever address/data is in flight.  The
    # hazard audit still sees full coverage and nothing becomes reachably
    # constant, so the taint rung's unguarded-commit policy is the
    # detector that must catch it.
    from ..core.stall_engine import full_bit_name
    from ..hdl.subst import substitute

    full_names = {
        full_bit_name(stage) for stage in range(1, pipelined.n_stages)
    }
    for name in _writable_memories(pipelined):
        memory = pipelined.module.memories[name]
        for index, port in enumerate(memory.write_ports):
            guards = tuple(
                node
                for node in E.walk([port.enable])
                if isinstance(node, E.RegRead) and node.name in full_names
            )
            if not guards:
                continue
            yield Mutant(
                mid=f"{core}/drop-commit-guard/{name}.w{index}",
                core=core,
                operator="drop-commit-guard",
                site=f"{name} write port {index} enable: occupancy guard := 1",
                build=lambda p=index, n=name, e=port.enable, g=guards: (
                    ops.with_write_port(
                        pipelined,
                        n,
                        p,
                        enable=substitute(
                            e, memo={id(node): E.const(1, 1) for node in g}
                        ),
                    )
                ),
            )


def _enum_rollback_tag_bypass(
    core: str, pipelined: PipelinedMachine
) -> Iterator[Mutant]:
    # the seeded rollback-tag bypass: a squash-window full bit is rebuilt
    # as ``ue_{s-1} OR stall_s`` without the ``NOT rollback'_s`` gate, so
    # an instruction *stalled* in stage s during a squash keeps its
    # occupancy tag and later commits.  (When stall_s is constant 0 the
    # stage cannot hold across the squash and the mutant is equivalent —
    # those sites are excluded.)  Killed by taint.rollback-escape.
    from ..core.stall_engine import full_bit_name

    engine = pipelined.engine
    seen: set[int] = set()
    for hardware in pipelined.speculations:
        for stage in range(1, hardware.spec.resolve_stage + 1):
            if stage in seen:
                continue
            seen.add(stage)
            name = full_bit_name(stage)
            prime = engine.rollback_prime[stage]
            if (
                name not in pipelined.module.registers
                or not _nonconst(prime)
                or not _nonconst(engine.stall[stage])
            ):
                continue
            yield Mutant(
                mid=f"{core}/rollback-tag-bypass/{name}",
                core=core,
                operator="rollback-tag-bypass",
                site=f"{name} next := ue_{stage - 1} | stall_{stage}"
                " (NOT rollback' gate dropped)",
                build=lambda n=name, s=stage: ops.with_register(
                    pipelined,
                    n,
                    next=E.bor(engine.ue[s - 1], engine.stall[s]),
                ),
            )


_NETLIST_ENUMERATORS: dict[
    str, Callable[[str, PipelinedMachine], Iterator[Mutant]]
] = {
    "stuck-data": _enum_stuck_data,
    "stuck-addr": _enum_stuck_addr,
    "invert-we": _enum_invert_we,
    "always-we": _enum_always_we,
    "swap-mux": _enum_swap_mux,
    "invert-enable": _enum_invert_enable,
    "stuck-reg": _enum_stuck_reg,
    "stuck-full": _enum_stuck_full,
    "drop-hit": _enum_drop_hit,
    "swap-hit-values": _enum_swap_hit_values,
    "weaken-dhaz": _enum_weaken_dhaz,
    "weaken-stall": _enum_weaken_stall,
    "drop-rollback": _enum_drop_rollback,
    "shift-rollback": _enum_shift_rollback,
    "drop-forwarding": _enum_drop_forwarding,
    "early-valid": _enum_early_valid,
    "freeze-reg": _enum_freeze_reg,
    "unalign-rom": _enum_unalign_rom,
    "drop-commit-guard": _enum_drop_commit_guard,
    "rollback-tag-bypass": _enum_rollback_tag_bypass,
}

OPERATORS: tuple[str, ...] = tuple(_NETLIST_ENUMERATORS)


def generate_mutants(
    core: CoreSpec | str,
    operators: Iterator[str] | list[str] | None = None,
    max_per_operator: int | None = None,
) -> list[Mutant]:
    """Enumerate the full fault catalog for one core.

    ``operators`` restricts to a subset of operator names;
    ``max_per_operator`` caps the sites taken per operator (first-N in
    deterministic enumeration order) for quick smoke runs.
    """
    spec = CORES[core] if isinstance(core, str) else core
    selected = list(operators) if operators is not None else list(OPERATORS)
    unknown = [name for name in selected if name not in OPERATORS]
    if unknown:
        raise ValueError(f"unknown mutation operator(s): {unknown}")
    baseline = transform(spec.build_machine())
    mutants: list[Mutant] = []
    for name in selected:
        sites = list(_NETLIST_ENUMERATORS[name](spec.name, baseline))
        if max_per_operator is not None:
            sites = sites[:max_per_operator]
        mutants.extend(sites)
    return mutants
