"""Mutation operators over netlists and pipelined machines.

A *mutant* is a deliberately broken copy of a verified design: the
transformation's output with one fault shape injected — a net stuck at a
constant, a write enable inverted or forced on, a mux with swapped arms, a
hazard/stall/rollback signal weakened, or (at the machine level) a
forwarding annotation deleted or moved to the wrong stage.  The fault
catalog follows the recurring pipelining defect classes of the HADES and
ACL2-pipeline validation literature: dropped forwards, off-by-one stalls
and wrong enables account for most real pipeline bugs.

Netlist-level operators never touch the original
:class:`repro.core.transform.PipelinedMachine`: expressions are immutable,
hash-consed DAGs, so a mutation is a *substitution* — a memo pre-seeded
with ``id(original) -> replacement`` rewrites every module root, sharing
preserved, and a fresh :class:`repro.hdl.netlist.Module` carries the
result.  Machine-level operators instead edit a freshly built
:class:`repro.machine.prepared.PreparedMachine` and re-run the
transformation, modelling a designer (or tool) error upstream of it.
"""

from __future__ import annotations

import dataclasses

from ..core.transform import PipelinedMachine
from ..hdl import expr as E
from ..hdl.netlist import Memory, Module, Register, WritePort
from ..hdl.subst import substitute

Replacements = list[tuple[E.Expr, E.Expr]]


def rewrite_module(
    pipelined: PipelinedMachine, replacements: Replacements
) -> PipelinedMachine:
    """Rebuild the pipeline's module with sub-expressions replaced.

    ``replacements`` pairs original nodes with same-width replacements;
    because expressions are interned, *every* structural occurrence of an
    original node is the same Python object and is rewritten.  The
    engine/network metadata is shared with the original pipeline — the
    mutation models a fault in the emitted hardware, not in the
    transformation's bookkeeping, so lint and the proof obligations keep
    describing the *intended* design.
    """
    for old, new in replacements:
        if old.width != new.width:
            raise ValueError(
                f"mutation replaces a {old.width}-bit net with a"
                f" {new.width}-bit one"
            )
    memo: dict[int, E.Expr] = {id(old): new for old, new in replacements}

    def rewrite(expression: E.Expr) -> E.Expr:
        return substitute(expression, memo=memo)

    module = pipelined.module
    clone = Module(module.name)
    clone.inputs = dict(module.inputs)
    for name, reg in module.registers.items():
        clone.registers[name] = Register(
            name=name,
            width=reg.width,
            init=reg.init,
            next=rewrite(reg.next),
            enable=rewrite(reg.enable),
        )
    for name, memory in module.memories.items():
        copied = Memory(name, memory.addr_width, memory.data_width, dict(memory.init))
        for port in memory.write_ports:
            copied.write_ports.append(
                WritePort(
                    enable=rewrite(port.enable),
                    addr=rewrite(port.addr),
                    data=rewrite(port.data),
                )
            )
        clone.memories[name] = copied
    clone.probes = {name: rewrite(value) for name, value in module.probes.items()}
    clone.lint_ignores = {
        element: set(rules) for element, rules in module.lint_ignores.items()
    }
    clone._default_next = set(module._default_next)
    clone._default_enable = set(module._default_enable)
    clone.validate()
    return dataclasses.replace(pipelined, module=clone)


def with_register(
    pipelined: PipelinedMachine,
    name: str,
    next: E.Expr | None = None,
    enable: E.Expr | None = None,
) -> PipelinedMachine:
    """Replace one register's next-value and/or enable expression.

    Unlike :func:`rewrite_module` this targets a *single* register even
    when its next/enable expression is shared with other logic.
    """
    reg = pipelined.module.registers[name]
    mutated = rewrite_module(pipelined, [])
    mutated.module.registers[name] = Register(
        name=name,
        width=reg.width,
        init=reg.init,
        next=next if next is not None else reg.next,
        enable=enable if enable is not None else reg.enable,
    )
    mutated.module.validate()
    return mutated


def with_write_port(
    pipelined: PipelinedMachine,
    memory: str,
    port: int = 0,
    enable: E.Expr | None = None,
    addr: E.Expr | None = None,
    data: E.Expr | None = None,
) -> PipelinedMachine:
    """Replace fields of one memory write port."""
    mutated = rewrite_module(pipelined, [])
    ports = mutated.module.memories[memory].write_ports
    original = ports[port]
    ports[port] = WritePort(
        enable=enable if enable is not None else original.enable,
        addr=addr if addr is not None else original.addr,
        data=data if data is not None else original.data,
    )
    mutated.module.validate()
    return mutated


def with_rom_word(
    pipelined: PipelinedMachine, memory: str, addr: int, value: int
) -> PipelinedMachine:
    """Corrupt one word of a read-only memory's initial image.

    Models a fault *upstream* of the emitted hardware: the program image
    burned into an instruction ROM differs from the one the designer (and
    the reference semantics) intended — a broken assembler or loader
    emitting, say, a misaligned control-transfer immediate.  Only ROMs
    qualify; a writable memory's initial image is ordinary state and its
    corruption a different fault shape.
    """
    mutated = rewrite_module(pipelined, [])
    rom = mutated.module.memories[memory]
    if rom.write_ports:
        raise ValueError(f"memory {memory!r} is writable, not a ROM")
    rom.init[addr] = value & ((1 << rom.data_width) - 1)
    mutated.module.validate()
    return mutated


def first_mux(root: E.Expr) -> E.Mux | None:
    """The first 2-way mux in DAG discovery order under ``root``."""
    for node in E.walk([root]):
        if isinstance(node, E.Mux):
            return node
    return None


def swap_mux_arms(pipelined: PipelinedMachine, mux: E.Mux) -> PipelinedMachine:
    """Swap the then/else arms of one mux node, everywhere it occurs."""
    swapped = E.mux(mux.sel, mux.els, mux.then)
    return rewrite_module(pipelined, [(mux, swapped)])


def force_net(
    pipelined: PipelinedMachine, net: E.Expr, value: int
) -> PipelinedMachine:
    """Stuck-at fault: replace every occurrence of ``net`` with a constant."""
    return rewrite_module(pipelined, [(net, E.const(net.width, value))])


def invert_net(pipelined: PipelinedMachine, net: E.Expr) -> PipelinedMachine:
    """Invert a 1-bit control net everywhere it occurs."""
    if net.width != 1:
        raise ValueError("invert_net mutates 1-bit control nets only")
    return rewrite_module(pipelined, [(net, E.bnot(net))])
